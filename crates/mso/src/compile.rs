//! The generic MSO-to-monadic-datalog transformation of Theorem 4.5.
//!
//! Given a unary MSO query `ϕ(x)` of quantifier depth `k` over
//! τ-structures of treewidth `w`, the construction enumerates the rank-k
//! types of pointed structures `(𝒜, s)` whose decompositions grow
//! bottom-up (Θ↑, rooted at `s`) or top-down (Θ↓, with `s` a leaf),
//! maintaining one *witness* structure per type, and emits one
//! quasi-guarded monadic datalog rule per type transition. Element
//! selection (part 3 of the proof) glues an up-witness to a down-witness
//! and model-checks `ϕ` on the result.
//!
//! As the paper stresses, this construction is inherently exponential in
//! `|ϕ|` and `w` ("inevitably leads to programs of exponential size") —
//! the hand-crafted §5 programs exist precisely because of this. The
//! implementation therefore takes explicit [`CompileLimits`] and reports
//! blow-ups instead of thrashing; it is meant to be *run* at toy
//! parameters (e.g. τ = {e}, w = 1, k = 1) and cross-checked against the
//! naive evaluator, which the test suite and the `mso_pipeline` example
//! do.

use crate::ast::{IndVar, Mso};
use crate::eval::{eval_unary, Budget, BudgetExhausted};
use crate::types::{TypeId, TypeInterner};
use mdtw_datalog::{Atom, IdbId, Literal, PredRef, Program, Rule, Term, Var};
use mdtw_structure::fx::FxHashMap;
use mdtw_structure::{Domain, ElemId, Signature, Structure};
use std::sync::Arc;

/// Caps on the type enumeration.
#[derive(Debug, Clone, Copy)]
pub struct CompileLimits {
    /// Maximum number of types in Θ↑ plus Θ↓.
    pub max_types: usize,
    /// Maximum witness structure size (domain elements).
    pub max_witness: usize,
    /// Step budget for each model check during element selection.
    pub check_budget: u64,
}

impl Default for CompileLimits {
    fn default() -> Self {
        Self {
            max_types: 4000,
            max_witness: 10,
            check_budget: 10_000_000,
        }
    }
}

/// Mode-aware type computation: FO types when the query is first-order.
fn type_of(
    ti: &mut TypeInterner,
    s: &Structure,
    bag: &[ElemId],
    k: usize,
    fo_only: bool,
) -> TypeId {
    if fo_only {
        ti.fo_type_of(s, bag, k)
    } else {
        ti.type_of(s, bag, k)
    }
}

/// Compilation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The type enumeration exceeded [`CompileLimits::max_types`] — the
    /// state explosion the paper predicts for the generic construction.
    TypeExplosion {
        /// Number of types reached when the limit was hit.
        reached: usize,
    },
    /// A model check during element selection ran out of budget.
    CheckBudget,
    /// The base-case enumeration alone is too large (`2^atoms` ground
    /// EDBs over one bag).
    BaseTooLarge {
        /// Number of candidate atoms over one bag.
        atoms: usize,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::TypeExplosion { reached } => {
                write!(f, "type enumeration exploded ({reached} types)")
            }
            CompileError::CheckBudget => write!(f, "model-check budget exhausted"),
            CompileError::BaseTooLarge { atoms } => {
                write!(f, "base case needs 2^{atoms} structures")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// The compiled query: a quasi-guarded monadic datalog program over τ_td
/// with distinguished unary predicate `phi`.
#[derive(Debug)]
pub struct CompiledQuery {
    /// The program. Evaluate it with an [`mdtw_datalog::Evaluator`]
    /// session carrying the τ_td functional dependencies —
    /// `Evaluator::with_options(program, EvalOptions::new()
    /// .fd_catalog(FdCatalog::for_td_signature(&enc.structure)))` — over
    /// `encode_tuple_td` structures whose base signature matches; one
    /// session serves every decomposition encoding of the query.
    pub program: Program,
    /// The `phi` predicate.
    pub phi: IdbId,
    /// Number of bottom-up types.
    pub up_types: usize,
    /// Number of top-down types.
    pub down_types: usize,
}

/// A witness `(𝒜, ā)`: a structure with a distinguished bag tuple.
#[derive(Debug, Clone)]
struct Witness {
    s: Structure,
    bag: Vec<ElemId>,
}

/// Compiles `ϕ(x)` (free variable `x`) over `base_sig`-structures of
/// treewidth `w` into monadic datalog over τ_td (Theorem 4.5).
pub fn compile_unary(
    phi: &Mso,
    x: IndVar,
    base_sig: &Arc<Signature>,
    w: usize,
    limits: CompileLimits,
) -> Result<CompiledQuery, CompileError> {
    compile_unary_filtered(phi, x, base_sig, w, limits, &|_| true)
}

/// Like [`compile_unary`] but enumerating only witness structures inside
/// a *structure class* given by `class` (e.g. symmetric irreflexive edge
/// relations for undirected graphs). Rules for out-of-class structures
/// can never fire on in-class data, so skipping them is sound as long as
/// the class is closed under induced substructures and unions glued on a
/// common bag — this is the "problem-specific optimization" lever of the
/// paper's §6 applied to the generic construction, and it is what makes
/// the construction runnable beyond toy signatures.
pub fn compile_unary_filtered(
    phi: &Mso,
    x: IndVar,
    base_sig: &Arc<Signature>,
    w: usize,
    limits: CompileLimits,
    class: &dyn Fn(&Structure) -> bool,
) -> Result<CompiledQuery, CompileError> {
    let k = phi.quantifier_depth();
    let fo_only = !phi.uses_sets();
    let mut ti = TypeInterner::new();
    let mut program = Program::default();
    let phi_pred = program.intern_idb("phi", 1).expect("fresh");

    // --- Base cases -------------------------------------------------------
    let bag_atoms = enumerate_bag_atoms(base_sig, w);
    if bag_atoms.len() > 16 {
        return Err(CompileError::BaseTooLarge {
            atoms: bag_atoms.len(),
        });
    }

    // Θ↑ and Θ↓ share base structures but carry distinct rule shapes.
    let mut up = TypeTable::default();
    let mut down = TypeTable::default();
    for mask in 0u32..(1u32 << bag_atoms.len()) {
        let witness = base_witness(base_sig, w, &bag_atoms, mask);
        if !class(&witness.s) {
            continue;
        }
        let ty = type_of(&mut ti, &witness.s, &witness.bag, k, fo_only);
        up.insert(ty, witness.clone());
        // One rule per enumerated structure ("in any case, we add the
        // following rule"), even when the type was seen before — distinct
        // EDB masks match different data.
        emit_base_rule(
            &mut program,
            base_sig,
            w,
            &bag_atoms,
            mask,
            up.name(ty),
            true,
        );
        down.insert(ty, witness);
        emit_base_rule(
            &mut program,
            base_sig,
            w,
            &bag_atoms,
            mask,
            down.name(ty),
            false,
        );
    }

    // --- Saturate Θ↑ -------------------------------------------------------
    saturate(
        &mut up,
        None,
        &mut ti,
        &mut program,
        base_sig,
        w,
        k,
        &bag_atoms,
        &limits,
        Direction::Up,
        fo_only,
        class,
    )?;
    // --- Saturate Θ↓ (branch steps may consult Θ↑) --------------------------
    let up_snapshot = up.clone();
    saturate(
        &mut down,
        Some(&up_snapshot),
        &mut ti,
        &mut program,
        base_sig,
        w,
        k,
        &bag_atoms,
        &limits,
        Direction::Down,
        fo_only,
        class,
    )?;

    // --- Element selection (part 3) -----------------------------------------
    for iu in 0..up.types.len() {
        for id in 0..down.types.len() {
            let w1 = &up.witnesses[iu];
            let w2 = &down.witnesses[id];
            let Some(glued) = merge_witnesses(w1, w2) else {
                continue;
            };
            for (i, &ai) in glued.bag.iter().enumerate() {
                let mut budget = Budget::new(limits.check_budget);
                match eval_unary(phi, x, &glued.s, ai, &mut budget) {
                    Ok(true) => {
                        emit_selection_rule(&mut program, w, &up.names[iu], &down.names[id], i);
                    }
                    Ok(false) => {}
                    Err(BudgetExhausted) => return Err(CompileError::CheckBudget),
                }
            }
        }
    }

    program
        .check_semipositive()
        .expect("generated program is semipositive by construction");
    Ok(CompiledQuery {
        program,
        phi: phi_pred,
        up_types: up.types.len(),
        down_types: down.types.len(),
    })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Up,
    Down,
}

/// A set of types with one witness and one IDB name each.
#[derive(Debug, Clone, Default)]
struct TypeTable {
    types: Vec<TypeId>,
    witnesses: Vec<Witness>,
    names: Vec<String>,
    index: FxHashMap<TypeId, usize>,
}

impl TypeTable {
    /// Inserts a type with its witness; returns true if it was new.
    fn insert(&mut self, ty: TypeId, witness: Witness) -> bool {
        if self.index.contains_key(&ty) {
            return false;
        }
        self.index.insert(ty, self.types.len());
        self.names.push(format!("t{}", ty.0));
        self.types.push(ty);
        self.witnesses.push(witness);
        true
    }

    fn name(&self, ty: TypeId) -> &str {
        &self.names[self.index[&ty]]
    }
}

/// All candidate ground atoms over a bag of `w+1` elements: `(pred,
/// index-pattern)` pairs.
fn enumerate_bag_atoms(sig: &Signature, w: usize) -> Vec<(u32, Vec<usize>)> {
    let mut out = Vec::new();
    for p in sig.preds() {
        let arity = sig.arity(p);
        let mut pattern = vec![0usize; arity];
        loop {
            out.push((p.0, pattern.clone()));
            let mut carry = 0;
            loop {
                if carry == arity {
                    break;
                }
                pattern[carry] += 1;
                if pattern[carry] <= w {
                    break;
                }
                pattern[carry] = 0;
                carry += 1;
            }
            if carry == arity {
                break;
            }
        }
    }
    out
}

/// Builds the base witness on `w+1` fresh elements with the EDB selected
/// by `mask`.
fn base_witness(
    sig: &Arc<Signature>,
    w: usize,
    bag_atoms: &[(u32, Vec<usize>)],
    mask: u32,
) -> Witness {
    let dom = Domain::from_names((0..=w).map(|i| format!("b{i}")));
    let mut s = Structure::new(Arc::clone(sig), dom);
    let bag: Vec<ElemId> = (0..=w as u32).map(ElemId).collect();
    for (i, (p, pattern)) in bag_atoms.iter().enumerate() {
        if mask >> i & 1 == 1 {
            let tuple: Vec<ElemId> = pattern.iter().map(|&j| bag[j]).collect();
            s.insert(mdtw_structure::PredId(*p), &tuple);
        }
    }
    Witness { s, bag }
}

// --- rule emission -----------------------------------------------------------

/// Variable layout of emitted rules: `Var(0) = v` (node), `Var(1..=w+1)` =
/// bag elements `x0..xw`, further variables as needed.
fn bag_atom(sig_td: &Signature, v: Var, w: usize, perm: Option<&[usize]>) -> Atom {
    let bag = sig_td.lookup("bag").expect("bag in τ_td");
    let mut terms = vec![Term::Var(v)];
    for i in 0..=w {
        let j = perm.map_or(i, |p| p[i]);
        terms.push(Term::Var(Var(1 + j as u32)));
    }
    Atom {
        pred: PredRef::Edb(bag),
        terms,
    }
}

fn edb_literals_for_mask(
    sig_td: &Signature,
    base_sig: &Signature,
    bag_atoms: &[(u32, Vec<usize>)],
    mask: u32,
) -> Vec<Literal> {
    let mut out = Vec::new();
    for (i, (p, pattern)) in bag_atoms.iter().enumerate() {
        let name = base_sig.name(mdtw_structure::PredId(*p));
        let pred = sig_td.lookup(name).expect("base pred in τ_td");
        let atom = Atom {
            pred: PredRef::Edb(pred),
            terms: pattern
                .iter()
                .map(|&j| Term::Var(Var(1 + j as u32)))
                .collect(),
        };
        out.push(Literal {
            atom,
            positive: mask >> i & 1 == 1,
        });
    }
    out
}

fn var_names(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            if i == 0 {
                "V".into()
            } else {
                format!("X{}", i - 1)
            }
        })
        .collect()
}

/// `ϑ(v) ← bag(v, x0..xw), leaf(v)|root(v), ±R(..) …`
fn emit_base_rule(
    program: &mut Program,
    base_sig: &Arc<Signature>,
    w: usize,
    bag_atoms: &[(u32, Vec<usize>)],
    mask: u32,
    ty_name: &str,
    is_up: bool,
) {
    let sig_td = base_sig.extend_td(w);
    let anchor = if is_up { "leaf" } else { "root" };
    let head_pred = program
        .intern_idb(
            &format!("{}_{}", if is_up { "up" } else { "down" }, ty_name),
            1,
        )
        .expect("arity 1");
    let v = Var(0);
    let mut body = vec![
        Literal {
            atom: bag_atom(&sig_td, v, w, None),
            positive: true,
        },
        Literal {
            atom: Atom {
                pred: PredRef::Edb(sig_td.lookup(anchor).expect("anchor")),
                terms: vec![Term::Var(v)],
            },
            positive: true,
        },
    ];
    body.extend(edb_literals_for_mask(&sig_td, base_sig, bag_atoms, mask));
    program.rules.push(Rule {
        head: Atom {
            pred: PredRef::Idb(head_pred),
            terms: vec![Term::Var(v)],
        },
        body,
        var_count: (w + 2) as u32,
        var_names: var_names(w + 2),
    });
}

/// The saturation loop: applies permutation, element-replacement and
/// branch constructions until no new types appear.
#[allow(clippy::too_many_arguments)]
fn saturate(
    table: &mut TypeTable,
    up_for_branch: Option<&TypeTable>,
    ti: &mut TypeInterner,
    program: &mut Program,
    base_sig: &Arc<Signature>,
    w: usize,
    k: usize,
    bag_atoms: &[(u32, Vec<usize>)],
    limits: &CompileLimits,
    dir: Direction,
    fo_only: bool,
    class: &dyn Fn(&Structure) -> bool,
) -> Result<(), CompileError> {
    let sig_td = base_sig.extend_td(w);
    let perms = permutations_of(w + 1);
    let mut cursor = 0;
    while cursor < table.types.len() {
        if table.types.len() > limits.max_types {
            return Err(CompileError::TypeExplosion {
                reached: table.types.len(),
            });
        }
        let witness = table.witnesses[cursor].clone();
        let src_name = table.names[cursor].clone();

        // (a) permutation nodes.
        for perm in &perms {
            let new_bag: Vec<ElemId> = perm.iter().map(|&i| witness.bag[i]).collect();
            let ty = type_of(ti, &witness.s, &new_bag, k, fo_only);
            table.insert(
                ty,
                Witness {
                    s: witness.s.clone(),
                    bag: new_bag,
                },
            );
            emit_unary_rule(
                program,
                &sig_td,
                w,
                &src_name,
                table.name(ty),
                Some(perm),
                None,
                bag_atoms,
                dir,
            );
        }

        // (b) element replacement nodes: replace position 0 by a fresh
        // element with every possible set of new atoms involving it.
        if witness.s.domain().len() < limits.max_witness {
            let pos0_atoms: Vec<usize> = bag_atoms
                .iter()
                .enumerate()
                .filter(|(_, (_, pattern))| pattern.contains(&0))
                .map(|(i, _)| i)
                .collect();
            for sel in 0u32..(1u32 << pos0_atoms.len()) {
                let (new_s, new_bag) =
                    replace_element(&witness, base_sig, bag_atoms, &pos0_atoms, sel);
                if !class(&new_s) {
                    continue;
                }
                let ty = type_of(ti, &new_s, &new_bag, k, fo_only);
                table.insert(
                    ty,
                    Witness {
                        s: new_s,
                        bag: new_bag,
                    },
                );
                // Mask over all bag atoms: selected pos-0 atoms, plus the
                // old-bag atoms not involving position 0 are inherited and
                // unconstrained in the rule (per the construction, only
                // atoms with x0 are tested).
                let mut mask = 0u32;
                for (j, &ai) in pos0_atoms.iter().enumerate() {
                    if sel >> j & 1 == 1 {
                        mask |= 1 << ai;
                    }
                }
                emit_unary_rule(
                    program,
                    &sig_td,
                    w,
                    &src_name,
                    table.name(ty),
                    None,
                    Some((mask, &pos0_atoms)),
                    bag_atoms,
                    dir,
                );
            }
        }

        // (c) branch nodes.
        let partner_table: &TypeTable = match dir {
            Direction::Up => table,
            Direction::Down => up_for_branch.expect("down saturation gets Θ↑"),
        };
        let partner_count = partner_table.types.len();
        let mut branch_results: Vec<(TypeId, Witness, String)> = Vec::new();
        for pi in 0..partner_count {
            let partner = &partner_table.witnesses[pi];
            if witness.s.domain().len() + partner.s.domain().len() > limits.max_witness + w + 1 {
                continue;
            }
            let Some(glued) = merge_witnesses(&witness, partner) else {
                continue;
            };
            let ty = type_of(ti, &glued.s, &glued.bag, k, fo_only);
            branch_results.push((ty, glued, partner_table.names[pi].clone()));
        }
        for (ty, glued, partner_name) in branch_results {
            table.insert(ty, glued);
            emit_branch_rules(
                program,
                &sig_td,
                w,
                &src_name,
                &partner_name,
                table.name(ty),
                dir,
            );
        }
        cursor += 1;
    }
    Ok(())
}

/// Builds the element-replacement successor witness: the bag's position-0
/// element is replaced by a fresh element carrying the selected atoms.
fn replace_element(
    witness: &Witness,
    base_sig: &Arc<Signature>,
    bag_atoms: &[(u32, Vec<usize>)],
    pos0_atoms: &[usize],
    sel: u32,
) -> (Structure, Vec<ElemId>) {
    let mut dom = Domain::new();
    for e in witness.s.domain().elems() {
        dom.insert(witness.s.domain().name(e).to_owned());
    }
    let fresh = dom.insert(format!("w{}", dom.len()));
    let mut s = Structure::new(Arc::clone(base_sig), dom);
    for p in witness.s.signature().preds() {
        for t in witness.s.relation(p).iter() {
            s.insert(p, t);
        }
    }
    let mut new_bag = witness.bag.clone();
    new_bag[0] = fresh;
    for (j, &ai) in pos0_atoms.iter().enumerate() {
        if sel >> j & 1 == 1 {
            let (p, pattern) = &bag_atoms[ai];
            let tuple: Vec<ElemId> = pattern.iter().map(|&idx| new_bag[idx]).collect();
            s.insert(mdtw_structure::PredId(*p), &tuple);
        }
    }
    (s, new_bag)
}

/// Glues two witnesses by identifying their bags (the renaming δ of the
/// proof); `None` if the bag EDBs disagree.
fn merge_witnesses(w1: &Witness, w2: &Witness) -> Option<Witness> {
    if !w1.s.bags_equivalent(&w1.bag, &w2.s, &w2.bag) {
        return None;
    }
    let mut dom = Domain::new();
    for e in w1.s.domain().elems() {
        dom.insert(format!("l{}", e.0));
    }
    let mut map2: FxHashMap<ElemId, ElemId> = FxHashMap::default();
    for (i, &b) in w2.bag.iter().enumerate() {
        map2.insert(b, w1.bag[i]);
    }
    for e in w2.s.domain().elems() {
        map2.entry(e).or_insert_with(|| {
            let id = dom.insert(format!("r{}", e.0));
            id
        });
    }
    let mut s = Structure::new(Arc::clone(w1.s.signature()), dom);
    for p in w1.s.signature().preds() {
        for t in w1.s.relation(p).iter() {
            s.insert(p, t);
        }
        for t in w2.s.relation(p).iter() {
            let mapped: Vec<ElemId> = t.iter().map(|e| map2[e]).collect();
            s.insert(p, &mapped);
        }
    }
    Some(Witness {
        s,
        bag: w1.bag.clone(),
    })
}

/// Emits a permutation or element-replacement rule.
#[allow(clippy::too_many_arguments)]
fn emit_unary_rule(
    program: &mut Program,
    sig_td: &Signature,
    w: usize,
    src: &str,
    dst: &str,
    perm: Option<&[usize]>,
    replacement: Option<(u32, &[usize])>,
    bag_atoms: &[(u32, Vec<usize>)],
    dir: Direction,
) {
    let prefix = match dir {
        Direction::Up => "up",
        Direction::Down => "down",
    };
    let head_pred = program
        .intern_idb(&format!("{prefix}_{dst}"), 1)
        .expect("arity 1");
    let src_pred = program
        .intern_idb(&format!("{prefix}_{src}"), 1)
        .expect("arity 1");
    let v = Var(0);
    let vp = Var((w + 2) as u32);
    // child1 direction: up rules walk child→parent (child1(v', v));
    // down rules walk parent→child (child1(v, v')).
    let child1 = sig_td.lookup("child1").expect("child1");
    let child_lit = |a: Var, b: Var| Literal {
        atom: Atom {
            pred: PredRef::Edb(child1),
            terms: vec![Term::Var(a), Term::Var(b)],
        },
        positive: true,
    };
    let mut var_count = (w + 3) as u32;
    let mut names = var_names(w + 2);
    names.push("Vc".into());

    // The node whose children matter: for up rules the head node `v`
    // derives its type from its only child, for down rules the parent
    // `v'` spawns the new leaf. Either way that node must not be a branch
    // node (branch transitions have their own rules).
    let single_node = match dir {
        Direction::Up => v,
        Direction::Down => vp,
    };
    let not_branch = Literal {
        atom: Atom {
            pred: PredRef::Edb(sig_td.lookup("branch").expect("branch")),
            terms: vec![Term::Var(single_node)],
        },
        positive: false,
    };

    let mut body: Vec<Literal> = Vec::new();
    match (perm, replacement) {
        (Some(p), None) => {
            // New bag is a permutation of the old: bag(v, xπ(0)…xπ(w)).
            body.push(Literal {
                atom: bag_atom(sig_td, v, w, Some(p)),
                positive: true,
            });
            match dir {
                Direction::Up => body.push(child_lit(vp, v)),
                Direction::Down => body.push(child_lit(v, vp)),
            }
            body.push(Literal {
                atom: Atom {
                    pred: PredRef::Idb(src_pred),
                    terms: vec![Term::Var(vp)],
                },
                positive: true,
            });
            // Old bag: bag(v', x0…xw).
            let mut terms = vec![Term::Var(vp)];
            for i in 0..=w {
                terms.push(Term::Var(Var(1 + i as u32)));
            }
            body.push(Literal {
                atom: Atom {
                    pred: PredRef::Edb(sig_td.lookup("bag").expect("bag")),
                    terms,
                },
                positive: true,
            });
            body.push(not_branch);
        }
        (None, Some((mask, pos0_atoms))) => {
            // bag(v, x0, x1…xw), old bag bag(v', x0', x1…xw), ± atoms on x0.
            let x0_old = Var(var_count);
            var_count += 1;
            names.push("X0old".into());
            body.push(Literal {
                atom: bag_atom(sig_td, v, w, None),
                positive: true,
            });
            match dir {
                Direction::Up => body.push(child_lit(vp, v)),
                Direction::Down => body.push(child_lit(v, vp)),
            }
            body.push(Literal {
                atom: Atom {
                    pred: PredRef::Idb(src_pred),
                    terms: vec![Term::Var(vp)],
                },
                positive: true,
            });
            let mut terms = vec![Term::Var(vp), Term::Var(x0_old)];
            for i in 1..=w {
                terms.push(Term::Var(Var(1 + i as u32)));
            }
            body.push(Literal {
                atom: Atom {
                    pred: PredRef::Edb(sig_td.lookup("bag").expect("bag")),
                    terms,
                },
                positive: true,
            });
            body.push(not_branch);
            // The replaced element is genuinely fresh: x0 ≠ x0'.
            body.push(Literal {
                atom: Atom {
                    pred: PredRef::Edb(sig_td.lookup("same").expect("same")),
                    terms: vec![Term::Var(Var(1)), Term::Var(x0_old)],
                },
                positive: false,
            });
            for &ai in pos0_atoms {
                let (p, pattern) = &bag_atoms[ai];
                // Base predicate ids are preserved by `extend_td`.
                let pred = mdtw_structure::PredId(*p);
                let atom = Atom {
                    pred: PredRef::Edb(pred),
                    terms: pattern
                        .iter()
                        .map(|&j| Term::Var(Var(1 + j as u32)))
                        .collect(),
                };
                body.push(Literal {
                    atom,
                    positive: mask >> ai & 1 == 1,
                });
            }
        }
        _ => unreachable!("exactly one of perm/replacement"),
    }
    program.rules.push(Rule {
        head: Atom {
            pred: PredRef::Idb(head_pred),
            terms: vec![Term::Var(v)],
        },
        body,
        var_count,
        var_names: names,
    });
}

/// Emits the branch rule(s).
fn emit_branch_rules(
    program: &mut Program,
    sig_td: &Signature,
    w: usize,
    src: &str,
    partner: &str,
    dst: &str,
    dir: Direction,
) {
    let bag = sig_td.lookup("bag").expect("bag");
    let child1 = sig_td.lookup("child1").expect("child1");
    let child2 = sig_td.lookup("child2").expect("child2");
    let v = Var(0);
    let v1 = Var((w + 2) as u32);
    let v2 = Var((w + 3) as u32);
    let mut names = var_names(w + 2);
    names.push("V1".into());
    names.push("V2".into());
    let bag_of = |node: Var| -> Atom {
        let mut terms = vec![Term::Var(node)];
        for i in 0..=w {
            terms.push(Term::Var(Var(1 + i as u32)));
        }
        Atom {
            pred: PredRef::Edb(bag),
            terms,
        }
    };
    let lit = |atom: Atom| Literal {
        atom,
        positive: true,
    };
    let idb = |program: &mut Program, name: String, node: Var| -> Atom {
        let p = program.intern_idb(&name, 1).expect("arity 1");
        Atom {
            pred: PredRef::Idb(p),
            terms: vec![Term::Var(node)],
        }
    };
    match dir {
        Direction::Up => {
            // ϑ(v) ← bag(v,…), child1(v1,v), ϑ1(v1), child2(v2,v), ϑ2(v2),
            //          bag(v1,…), bag(v2,…).   (both child orders)
            for (first, second) in [(src, partner), (partner, src)] {
                let head = idb(program, format!("up_{dst}"), v);
                let a1 = idb(program, format!("up_{first}"), v1);
                let a2 = idb(program, format!("up_{second}"), v2);
                program.rules.push(Rule {
                    head,
                    body: vec![
                        lit(bag_of(v)),
                        lit(Atom {
                            pred: PredRef::Edb(child1),
                            terms: vec![Term::Var(v1), Term::Var(v)],
                        }),
                        lit(a1),
                        lit(Atom {
                            pred: PredRef::Edb(child2),
                            terms: vec![Term::Var(v2), Term::Var(v)],
                        }),
                        lit(a2),
                        lit(bag_of(v1)),
                        lit(bag_of(v2)),
                    ],
                    var_count: (w + 4) as u32,
                    var_names: names.clone(),
                });
            }
        }
        Direction::Down => {
            // ϑ1(v1) ← bag(v1,…), child1(v1,v), child2(v2,v), ϑ(v), ϑ2(v2),
            //            bag(v,…), bag(v2,…).   (plus the mirrored rule)
            for (self_child, sibling_child) in [(child1, child2), (child2, child1)] {
                let head = idb(program, format!("down_{dst}"), v1);
                let parent = idb(program, format!("down_{src}"), v);
                let sib = idb(program, format!("up_{partner}"), v2);
                program.rules.push(Rule {
                    head,
                    body: vec![
                        lit(bag_of(v1)),
                        lit(Atom {
                            pred: PredRef::Edb(self_child),
                            terms: vec![Term::Var(v1), Term::Var(v)],
                        }),
                        lit(Atom {
                            pred: PredRef::Edb(sibling_child),
                            terms: vec![Term::Var(v2), Term::Var(v)],
                        }),
                        lit(parent),
                        lit(sib),
                        lit(bag_of(v)),
                        lit(bag_of(v2)),
                    ],
                    var_count: (w + 4) as u32,
                    var_names: names.clone(),
                });
            }
        }
    }
}

/// `phi(xi) ← up_ϑ1(v), down_ϑ2(v), bag(v, x0…xw).`
fn emit_selection_rule(program: &mut Program, w: usize, up_name: &str, down_name: &str, i: usize) {
    let v = Var(0);
    let up_pred = program.intern_idb(&format!("up_{up_name}"), 1).expect("a1");
    let down_pred = program
        .intern_idb(&format!("down_{down_name}"), 1)
        .expect("a1");
    let phi = program.intern_idb("phi", 1).expect("a1");
    // The bag atom is the quasi-guard; we need its PredRef. The program
    // stores no signature, so the caller context guarantees bag exists; we
    // reconstruct it via the stored rules. Simplest: reuse a rule's bag
    // literal shape. All emitted rules share Var numbering, so rebuild.
    let bag_pred = program
        .rules
        .iter()
        .find_map(|r| {
            r.body.iter().find_map(|l| match l.atom.pred {
                PredRef::Edb(p) if l.atom.terms.len() == w + 2 => Some(p),
                _ => None,
            })
        })
        .expect("some rule mentions bag");
    let mut terms = vec![Term::Var(v)];
    for j in 0..=w {
        terms.push(Term::Var(Var(1 + j as u32)));
    }
    program.rules.push(Rule {
        head: Atom {
            pred: PredRef::Idb(phi),
            terms: vec![Term::Var(Var(1 + i as u32))],
        },
        body: vec![
            Literal {
                atom: Atom {
                    pred: PredRef::Idb(up_pred),
                    terms: vec![Term::Var(v)],
                },
                positive: true,
            },
            Literal {
                atom: Atom {
                    pred: PredRef::Idb(down_pred),
                    terms: vec![Term::Var(v)],
                },
                positive: true,
            },
            Literal {
                atom: Atom {
                    pred: PredRef::Edb(bag_pred),
                    terms,
                },
                positive: true,
            },
        ],
        var_count: (w + 2) as u32,
        var_names: var_names(w + 2),
    });
}

fn permutations_of(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut buf: Vec<usize> = (0..n).collect();
    fn rec(buf: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
        if k == buf.len() {
            out.push(buf.clone());
            return;
        }
        for i in k..buf.len() {
            buf.swap(k, i);
            rec(buf, k + 1, out);
            buf.swap(k, i);
        }
    }
    rec(&mut buf, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Budget;
    use crate::library::has_neighbor;
    use mdtw_datalog::{EvalOptions, Evaluator, FdCatalog};
    use mdtw_decomp::{decompose, encode_tuple_td, Heuristic, TupleTd};
    use mdtw_graph::{encode_graph, Graph};

    /// Undirected loop-free graphs: the class of `encode_graph` outputs.
    fn undirected(s: &Structure) -> bool {
        let e = s.signature().lookup("e").expect("e");
        s.relation(e)
            .iter()
            .all(|t| t[0] != t[1] && s.holds(e, &[t[1], t[0]]))
    }

    fn compile_has_neighbor() -> CompiledQuery {
        let sig = Arc::new(mdtw_graph::graph_signature());
        compile_unary_filtered(
            &has_neighbor(),
            IndVar(0),
            &sig,
            1,
            CompileLimits::default(),
            &undirected,
        )
        .expect("compilation at toy parameters succeeds")
    }

    #[test]
    fn compiles_has_neighbor_at_width_1() {
        let q = compile_has_neighbor();
        assert!(q.up_types > 0);
        assert!(q.down_types > 0);
        assert!(!q.program.rules.is_empty());
        q.program.check_semipositive().unwrap();
    }

    #[test]
    fn compiled_program_matches_naive_evaluation() {
        let q = compile_has_neighbor();
        // Width-1 inputs: forests. Try several shapes.
        let graphs = [
            Graph::from_edges(4, &[(0, 1), (1, 2)]),
            Graph::from_edges(5, &[(0, 1), (2, 3)]),
            Graph::from_edges(3, &[]),
            Graph::from_edges(6, &[(0, 1), (1, 2), (1, 3), (3, 4)]),
        ];
        // One program, many τ_td structures: a single Evaluator session
        // carries the compiled query across every encoding (the τ_td
        // signature — and hence the FdCatalog's predicate ids — is the
        // same for all of them).
        let mut session: Option<Evaluator> = None;
        for (gi, g) in graphs.iter().enumerate() {
            let s = encode_graph(g);
            let td = decompose(&s, Heuristic::MinDegree);
            let tuple_td = TupleTd::from_td_with_width(&td, s.domain().len(), 1).unwrap();
            let enc = encode_tuple_td(&s, &tuple_td);
            let session = session.get_or_insert_with(|| {
                let catalog = FdCatalog::for_td_signature(&enc.structure);
                Evaluator::with_options(q.program.clone(), EvalOptions::new().fd_catalog(catalog))
                    .expect("compiled program is quasi-guarded")
            });
            let store = session
                .evaluate(&enc.structure)
                .expect("quasi-guarded")
                .store;
            for e in s.domain().elems() {
                let expected = crate::eval::eval_unary(
                    &has_neighbor(),
                    IndVar(0),
                    &s,
                    e,
                    &mut Budget::unlimited(),
                )
                .unwrap();
                let got = store.holds(q.phi, &[e]);
                assert_eq!(got, expected, "graph {gi}, element {e}");
            }
        }
    }

    #[test]
    fn tight_limits_report_explosion() {
        let sig = Arc::new(mdtw_graph::graph_signature());
        let err = compile_unary(
            &has_neighbor(),
            IndVar(0),
            &sig,
            1,
            CompileLimits {
                max_types: 2,
                max_witness: 6,
                check_budget: 1_000_000,
            },
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::TypeExplosion { .. }));
    }

    #[test]
    fn wide_signature_base_case_is_rejected() {
        // τ with a ternary predicate at width 2: 27 candidate atoms > 16.
        let sig = Arc::new(Signature::from_pairs([("r", 3)]));
        let err = compile_unary(
            &Mso::exists(
                IndVar(1),
                Mso::pred("r", vec![IndVar(0), IndVar(1), IndVar(1)]),
            ),
            IndVar(0),
            &sig,
            2,
            CompileLimits::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::BaseTooLarge { .. }));
    }
}
