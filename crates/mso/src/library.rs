//! The paper's formula library: 3-Colorability (§5.1), PRIMALITY
//! (Example 2.6) and a few smaller MSO queries used in tests and examples.

use crate::ast::{IndVar, Mso, SetVar};

/// The 3-Colorability sentence of §5.1 over τ = {e}:
///
/// ```text
/// ∃R ∃G ∃B [ Partition(R,G,B) ∧
///            ∀v₁∀v₂ (e(v₁,v₂) → ¬same-class(v₁,v₂)) ]
/// ```
pub fn three_colorability() -> Mso {
    let (r, g, b) = (SetVar(0), SetVar(1), SetVar(2));
    let v = IndVar(0);
    let (v1, v2) = (IndVar(1), IndVar(2));
    let in_ = Mso::In;
    let partition = Mso::forall(
        v,
        Mso::all(vec![
            in_(v, r).or(in_(v, g)).or(in_(v, b)),
            in_(v, r).not().or(in_(v, g).not()),
            in_(v, r).not().or(in_(v, b).not()),
            in_(v, g).not().or(in_(v, b).not()),
        ]),
    );
    let proper = Mso::forall(
        v1,
        Mso::forall(
            v2,
            Mso::pred("e", vec![v1, v2]).implies(Mso::all(vec![
                in_(v1, r).not().or(in_(v2, r).not()),
                in_(v1, g).not().or(in_(v2, g).not()),
                in_(v1, b).not().or(in_(v2, b).not()),
            ])),
        ),
    );
    Mso::exists_set(
        r,
        Mso::exists_set(g, Mso::exists_set(b, partition.and(proper))),
    )
}

/// 2-Colorability (bipartiteness), a smaller sibling used in tests.
pub fn two_colorability() -> Mso {
    let (r, g) = (SetVar(0), SetVar(1));
    let v = IndVar(0);
    let (v1, v2) = (IndVar(1), IndVar(2));
    let in_ = Mso::In;
    let partition = Mso::forall(
        v,
        in_(v, r)
            .or(in_(v, g))
            .and(in_(v, r).not().or(in_(v, g).not())),
    );
    let proper = Mso::forall(
        v1,
        Mso::forall(
            v2,
            Mso::pred("e", vec![v1, v2]).implies(
                in_(v1, r)
                    .not()
                    .or(in_(v2, r).not())
                    .and(in_(v1, g).not().or(in_(v2, g).not())),
            ),
        ),
    );
    Mso::exists_set(r, Mso::exists_set(g, partition.and(proper)))
}

/// `Closed(Y)` from Example 2.6 over τ = {fd, att, lh, rh}:
/// every FD has its rhs inside `Y` or some lhs attribute outside `Y`.
pub fn closed(y: SetVar, f: IndVar, b: IndVar) -> Mso {
    Mso::forall(
        f,
        Mso::pred("fd", vec![f]).implies(Mso::exists(
            b,
            Mso::pred("rh", vec![b, f])
                .and(Mso::In(b, y))
                .or(Mso::pred("lh", vec![b, f]).and(Mso::In(b, y).not())),
        )),
    )
}

/// The PRIMALITY query ϕ(x) of Example 2.6, in primitive MSO (the paper's
/// set term `Y ∪ {x}` is unfolded into `Y ⊆ Z′ ∧ x ∈ Z′`):
///
/// ```text
/// ϕ(x) = att(x) ∧ ∃Y [ Y ⊆ atts ∧ Closed(Y) ∧ x ∉ Y ∧
///          ¬∃Z′ ( Y ⊆ Z′ ∧ x ∈ Z′ ∧ Z′ ⊊ atts ∧ Closed(Z′) ) ]
/// ```
///
/// i.e. `Y` is closed, misses `x`, and no *proper* closed subset of the
/// attributes contains `Y ∪ {x}` — equivalently `(Y ∪ {x})⁺ = R`.
///
/// The free variable is `IndVar(0)`.
pub fn primality() -> Mso {
    let x = IndVar(0);
    let z = IndVar(1);
    let f = IndVar(2);
    let b = IndVar(3);
    let y = SetVar(0);
    let zp = SetVar(1);

    let y_only_atts = Mso::forall(z, Mso::In(z, y).implies(Mso::pred("att", vec![z])));
    let zp_only_atts = Mso::forall(z, Mso::In(z, zp).implies(Mso::pred("att", vec![z])));
    let zp_proper = Mso::exists(z, Mso::pred("att", vec![z]).and(Mso::In(z, zp).not()));
    let y_sub_zp = Mso::forall(z, Mso::In(z, y).implies(Mso::In(z, zp)));

    let bad_zp = Mso::exists_set(
        zp,
        Mso::all(vec![
            y_sub_zp,
            Mso::In(x, zp),
            zp_only_atts,
            zp_proper,
            closed(zp, f, b),
        ]),
    );

    Mso::pred("att", vec![x]).and(Mso::exists_set(
        y,
        Mso::all(vec![
            y_only_atts,
            closed(y, f, b),
            Mso::In(x, y).not(),
            bad_zp.not(),
        ]),
    ))
}

/// `φ(x) = ∃y e(x, y)` — "x has a neighbour" (quantifier depth 1; the
/// demonstration query for the generic Theorem 4.5 compiler).
pub fn has_neighbor() -> Mso {
    let x = IndVar(0);
    let y = IndVar(1);
    Mso::exists(y, Mso::pred("e", vec![x, y]))
}

/// `φ(x) = ¬∃y e(x, y) ∧ ¬∃y e(y, x)` — "x is isolated".
pub fn isolated() -> Mso {
    let x = IndVar(0);
    let y = IndVar(1);
    Mso::exists(y, Mso::pred("e", vec![x, y]).or(Mso::pred("e", vec![y, x]))).not()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_sentence, eval_unary, Budget};
    use mdtw_graph::{complete, cycle, encode_graph, wheel};
    use mdtw_schema::{encode_schema, example_2_1};

    #[test]
    fn three_colorability_matches_backtracking() {
        // Small instances only: the naive evaluator enumerates 2^{3|V|}
        // set triples in the worst case (Petersen-sized graphs are covered
        // by the FPT solver tests in mdtw-core).
        for (g, expect) in [
            (cycle(5), true),
            (cycle(6), true),
            (complete(4), false),
            (wheel(5), false),
        ] {
            let s = encode_graph(&g);
            let got = eval_sentence(&three_colorability(), &s, &mut Budget::unlimited()).unwrap();
            assert_eq!(got, expect, "{g}");
        }
    }

    #[test]
    fn two_colorability_is_bipartiteness() {
        for (g, expect) in [(cycle(4), true), (cycle(5), false), (complete(2), true)] {
            let s = encode_graph(&g);
            let got = eval_sentence(&two_colorability(), &s, &mut Budget::unlimited()).unwrap();
            assert_eq!(got, expect, "{g}");
        }
    }

    #[test]
    fn primality_formula_on_running_example() {
        // Example 2.6: (𝒜, a) ⊨ ϕ(x). Positive cases exit early; the
        // exponential negative sweep runs on a reduced schema below.
        let schema = example_2_1();
        let enc = encode_schema(&schema);
        let phi = primality();
        let x = IndVar(0);
        let mut budget = Budget::unlimited();
        for name in ["a", "b", "c", "d"] {
            let elem = enc.elem_of_attr(schema.attr(name).unwrap());
            let got = eval_unary(&phi, x, &enc.structure, elem, &mut budget).unwrap();
            assert!(got, "attribute {name} must be prime");
        }
        // FD elements are never prime (the att(x) conjunct fails at once).
        let f1 = enc.elem_of_fd(0);
        assert!(!eval_unary(&phi, x, &enc.structure, f1, &mut budget).unwrap());
    }

    #[test]
    fn primality_formula_negative_cases() {
        // Reduced running example: R = abcde, F = {ab→c, c→b, cd→e}.
        // Keys are abd and acd, so e is not prime. Small enough for the
        // full 2^|A| × 2^|A| sweep the naive evaluator needs on a "no".
        let mut schema = mdtw_schema::Schema::new();
        for n in ["a", "b", "c", "d", "e"] {
            schema.add_attr(n);
        }
        schema.add_fd_str("ab -> c");
        schema.add_fd_str("c -> b");
        schema.add_fd_str("cd -> e");
        assert_eq!(schema.render_set(&schema.prime_attributes_exact()), "abcd");
        let enc = encode_schema(&schema);
        let phi = primality();
        let x = IndVar(0);
        let mut budget = Budget::unlimited();
        let e = enc.elem_of_attr(schema.attr("e").unwrap());
        assert!(!eval_unary(&phi, x, &enc.structure, e, &mut budget).unwrap());
        let a = enc.elem_of_attr(schema.attr("a").unwrap());
        assert!(eval_unary(&phi, x, &enc.structure, a, &mut budget).unwrap());
    }

    #[test]
    fn quantifier_depths() {
        assert_eq!(three_colorability().quantifier_depth(), 5);
        assert_eq!(has_neighbor().quantifier_depth(), 1);
        // primality: ∃Y (… ∃Z′ (… Closed: ∀f ∃b)) nesting.
        assert!(primality().quantifier_depth() >= 4);
    }

    #[test]
    fn neighbor_queries() {
        let g = cycle(3);
        let s = encode_graph(&g);
        let x = IndVar(0);
        let mut b = Budget::unlimited();
        assert!(eval_unary(&has_neighbor(), x, &s, mdtw_structure::ElemId(0), &mut b).unwrap());
        assert!(!eval_unary(&isolated(), x, &s, mdtw_structure::ElemId(0), &mut b).unwrap());
    }
}
