//! Naive MSO model checking.
//!
//! This is the executable semantics of §2.3 and the stand-in for MONA in
//! the Table 1 experiments: a direct model checker whose set quantifiers
//! enumerate all `2^|A|` subsets, so its data complexity is exponential —
//! exactly the behaviour the paper reports for the MSO/MONA baseline
//! ("out-of-memory errors already for really small input data"). A work
//! budget lets the harness convert runaway evaluations into the paper's
//! "–" table entries instead of hanging.

use crate::ast::{IndVar, Mso, SetVar};
use mdtw_structure::{ElemId, Structure};

/// A set-variable valuation: a bitset over the structure's domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set sized for a domain of `n` elements.
    pub fn empty(n: usize) -> Self {
        Self {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, e: ElemId) -> bool {
        self.words[e.index() / 64] >> (e.index() % 64) & 1 == 1
    }

    /// Inserts an element.
    #[inline]
    pub fn insert(&mut self, e: ElemId) {
        self.words[e.index() / 64] |= 1 << (e.index() % 64);
    }

    /// Removes an element.
    #[inline]
    pub fn remove(&mut self, e: ElemId) {
        self.words[e.index() / 64] &= !(1 << (e.index() % 64));
    }

    /// `self ⊆ other`.
    pub fn subset_of(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Builds a bitset from `k`-bit counter `bits` over the first 64
    /// elements (used by subset enumeration; domains larger than 64 use
    /// the incremental enumerator below).
    fn from_low_bits(n: usize, bits: u64) -> Self {
        let mut s = Self::empty(n);
        if !s.words.is_empty() {
            s.words[0] = bits;
        }
        s
    }
}

/// The evaluation budget: an upper bound on elementary evaluation steps
/// (atom checks and quantifier instantiations).
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Remaining steps.
    pub steps: u64,
}

impl Budget {
    /// A budget of `steps` elementary operations.
    pub fn new(steps: u64) -> Self {
        Self { steps }
    }

    /// An effectively unlimited budget.
    pub fn unlimited() -> Self {
        Self { steps: u64::MAX }
    }
}

/// Evaluation failure: the step budget was exhausted (the harness reports
/// this as the paper's "–"/out-of-memory entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExhausted;

impl std::fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MSO evaluation budget exhausted")
    }
}

impl std::error::Error for BudgetExhausted {}

/// A variable assignment under construction.
#[derive(Debug, Clone)]
pub struct Assignment {
    /// Individual variable values.
    pub ind: Vec<Option<ElemId>>,
    /// Set variable values.
    pub set: Vec<Option<BitSet>>,
}

impl Assignment {
    /// An empty assignment sized for `formula`.
    pub fn for_formula(formula: &Mso) -> Self {
        let (ni, ns) = formula.var_bounds();
        Self {
            ind: vec![None; ni],
            set: vec![None; ns],
        }
    }

    /// Binds an individual variable.
    pub fn bind_ind(&mut self, v: IndVar, e: ElemId) {
        if self.ind.len() <= v.0 as usize {
            self.ind.resize(v.0 as usize + 1, None);
        }
        self.ind[v.0 as usize] = Some(e);
    }

    /// Binds a set variable.
    pub fn bind_set(&mut self, v: SetVar, s: BitSet) {
        if self.set.len() <= v.0 as usize {
            self.set.resize(v.0 as usize + 1, None);
        }
        self.set[v.0 as usize] = Some(s);
    }
}

/// Evaluates a sentence (no free variables) over a structure.
pub fn eval_sentence(
    formula: &Mso,
    structure: &Structure,
    budget: &mut Budget,
) -> Result<bool, BudgetExhausted> {
    let mut asg = Assignment::for_formula(formula);
    eval(formula, structure, &mut asg, budget)
}

/// Evaluates a unary query `φ(x)` at element `a` (the paper's
/// `(𝒜, a) ⊨ φ(x)`).
pub fn eval_unary(
    formula: &Mso,
    x: IndVar,
    structure: &Structure,
    a: ElemId,
    budget: &mut Budget,
) -> Result<bool, BudgetExhausted> {
    let mut asg = Assignment::for_formula(formula);
    asg.bind_ind(x, a);
    eval(formula, structure, &mut asg, budget)
}

/// Core recursive evaluator.
pub fn eval(
    formula: &Mso,
    structure: &Structure,
    asg: &mut Assignment,
    budget: &mut Budget,
) -> Result<bool, BudgetExhausted> {
    if budget.steps == 0 {
        return Err(BudgetExhausted);
    }
    budget.steps -= 1;
    let value = |v: IndVar, asg: &Assignment| -> ElemId {
        asg.ind[v.0 as usize].expect("individual variable bound")
    };
    match formula {
        Mso::Pred(name, vars) => {
            let pred = structure
                .signature()
                .lookup(name)
                .unwrap_or_else(|| panic!("unknown predicate `{name}`"));
            let args: Vec<ElemId> = vars.iter().map(|&v| value(v, asg)).collect();
            Ok(structure.holds(pred, &args))
        }
        Mso::Eq(a, b) => Ok(value(*a, asg) == value(*b, asg)),
        Mso::In(x, s) => {
            let set = asg.set[s.0 as usize].as_ref().expect("set variable bound");
            Ok(set.contains(value(*x, asg)))
        }
        Mso::Subset(a, b) => {
            let sa = asg.set[a.0 as usize].as_ref().expect("bound");
            let sb = asg.set[b.0 as usize].as_ref().expect("bound");
            Ok(sa.subset_of(sb))
        }
        Mso::ProperSubset(a, b) => {
            let sa = asg.set[a.0 as usize].as_ref().expect("bound");
            let sb = asg.set[b.0 as usize].as_ref().expect("bound");
            Ok(sa.subset_of(sb) && sa != sb)
        }
        Mso::Not(f) => Ok(!eval(f, structure, asg, budget)?),
        Mso::And(a, b) => Ok(eval(a, structure, asg, budget)? && eval(b, structure, asg, budget)?),
        Mso::Or(a, b) => Ok(eval(a, structure, asg, budget)? || eval(b, structure, asg, budget)?),
        Mso::Implies(a, b) => {
            Ok(!eval(a, structure, asg, budget)? || eval(b, structure, asg, budget)?)
        }
        Mso::Iff(a, b) => Ok(eval(a, structure, asg, budget)? == eval(b, structure, asg, budget)?),
        Mso::Exists(v, f) => {
            let saved = asg.ind.get(v.0 as usize).copied().flatten();
            for e in structure.domain().elems() {
                asg.bind_ind(*v, e);
                if eval(f, structure, asg, budget)? {
                    asg.ind[v.0 as usize] = saved;
                    return Ok(true);
                }
            }
            asg.ind[v.0 as usize] = saved;
            Ok(false)
        }
        Mso::Forall(v, f) => {
            let saved = asg.ind.get(v.0 as usize).copied().flatten();
            for e in structure.domain().elems() {
                asg.bind_ind(*v, e);
                if !eval(f, structure, asg, budget)? {
                    asg.ind[v.0 as usize] = saved;
                    return Ok(false);
                }
            }
            asg.ind[v.0 as usize] = saved;
            Ok(true)
        }
        Mso::ExistsSet(v, f) => quantify_set(*v, f, structure, asg, budget, true),
        Mso::ForallSet(v, f) => quantify_set(*v, f, structure, asg, budget, false),
    }
}

/// Set quantification: enumerates all `2^n` subsets. Domains up to 64
/// elements use a counter; larger domains walk a recursive enumerator
/// (they are far beyond any realistic budget anyway).
fn quantify_set(
    v: SetVar,
    f: &Mso,
    structure: &Structure,
    asg: &mut Assignment,
    budget: &mut Budget,
    existential: bool,
) -> Result<bool, BudgetExhausted> {
    let n = structure.domain().len();
    assert!(
        n <= 64,
        "naive set quantification supports domains of ≤ 64 elements"
    );
    let saved = asg.set.get(v.0 as usize).cloned().flatten();
    let total: u128 = 1u128 << n;
    let mut bits: u128 = 0;
    while bits < total {
        if budget.steps == 0 {
            return Err(BudgetExhausted);
        }
        budget.steps -= 1;
        asg.bind_set(v, BitSet::from_low_bits(n, bits as u64));
        let sat = eval(f, structure, asg, budget)?;
        if sat == existential {
            asg.set[v.0 as usize] = saved;
            return Ok(existential);
        }
        bits += 1;
    }
    asg.set[v.0 as usize] = saved;
    Ok(!existential)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdtw_structure::{Domain, Signature};
    use std::sync::Arc;

    fn path3() -> Structure {
        let sig = Arc::new(Signature::from_pairs([("e", 2)]));
        let dom = Domain::anonymous(3);
        let mut s = Structure::new(sig, dom);
        let e = s.signature().lookup("e").unwrap();
        s.insert(e, &[ElemId(0), ElemId(1)]);
        s.insert(e, &[ElemId(1), ElemId(2)]);
        s
    }

    #[test]
    fn fo_quantifiers() {
        let s = path3();
        let x = IndVar(0);
        let y = IndVar(1);
        // ∃x ∃y e(x, y): true.
        let f = Mso::exists(x, Mso::exists(y, Mso::pred("e", vec![x, y])));
        assert_eq!(eval_sentence(&f, &s, &mut Budget::unlimited()), Ok(true));
        // ∀x ∃y e(x, y): false (2 has no successor).
        let g = Mso::forall(x, Mso::exists(y, Mso::pred("e", vec![x, y])));
        assert_eq!(eval_sentence(&g, &s, &mut Budget::unlimited()), Ok(false));
    }

    #[test]
    fn unary_query() {
        let s = path3();
        let x = IndVar(0);
        let y = IndVar(1);
        // φ(x) = ∃y e(x, y).
        let f = Mso::exists(y, Mso::pred("e", vec![x, y]));
        let mut b = Budget::unlimited();
        assert_eq!(eval_unary(&f, x, &s, ElemId(0), &mut b), Ok(true));
        assert_eq!(eval_unary(&f, x, &s, ElemId(2), &mut b), Ok(false));
    }

    #[test]
    fn set_quantifiers() {
        let s = path3();
        let x = IndVar(0);
        let set = SetVar(0);
        // ∃X ∀x (x ∈ X): true (X = domain).
        let f = Mso::exists_set(set, Mso::forall(x, Mso::In(x, set)));
        assert_eq!(eval_sentence(&f, &s, &mut Budget::unlimited()), Ok(true));
        // ∀X ∀x (x ∈ X): false.
        let g = Mso::forall_set(set, Mso::forall(x, Mso::In(x, set)));
        assert_eq!(eval_sentence(&g, &s, &mut Budget::unlimited()), Ok(false));
    }

    #[test]
    fn subset_atoms() {
        let s = path3();
        let a = SetVar(0);
        let b = SetVar(1);
        // ∀A ∃B (A ⊆ B): true (B = A).
        let f = Mso::forall_set(a, Mso::exists_set(b, Mso::Subset(a, b)));
        assert_eq!(eval_sentence(&f, &s, &mut Budget::unlimited()), Ok(true));
        // ∀A ∃B (A ⊂ B): false (A = domain has no proper superset).
        let g = Mso::forall_set(a, Mso::exists_set(b, Mso::ProperSubset(a, b)));
        assert_eq!(eval_sentence(&g, &s, &mut Budget::unlimited()), Ok(false));
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let s = path3();
        let set = SetVar(0);
        let x = IndVar(0);
        let f = Mso::forall_set(set, Mso::exists(x, Mso::In(x, set).or(Mso::Eq(x, x))));
        let mut tight = Budget::new(5);
        assert_eq!(eval_sentence(&f, &s, &mut tight), Err(BudgetExhausted));
    }

    #[test]
    fn bitset_ops() {
        let mut s = BitSet::empty(70);
        s.insert(ElemId(3));
        s.insert(ElemId(69));
        assert!(s.contains(ElemId(3)));
        assert!(s.contains(ElemId(69)));
        assert_eq!(s.len(), 2);
        s.remove(ElemId(3));
        assert!(!s.contains(ElemId(3)));
        let t = BitSet::empty(70);
        assert!(t.subset_of(&s));
        assert!(!s.subset_of(&t));
        assert!(t.is_empty());
    }
}
