//! Rank-k MSO types via the Ehrenfeucht–Fraïssé characterization (§2.3,
//! §3).
//!
//! Two pointed structures are `≡ᵏ_MSO`-equivalent iff the duplicator wins
//! the k-round MSO game; equivalently, iff their *rank-k types* coincide,
//! where the rank-0 type is the atomic diagram of the distinguished
//! elements (and set valuations) and the rank-(k+1) type is the rank-0
//! data plus the **sets** of rank-k types reachable by one point move and
//! by one set move. Types are hash-consed in a [`TypeInterner`] so that
//! equality is id equality even across different structures (this is what
//! the Theorem 4.5 compiler uses to detect "a type we have seen before").
//!
//! Computing a rank-k type costs `O((n + 2ⁿ)ᵏ)` on an n-element structure;
//! this module is meant for the small witness structures of §3/§4, not for
//! data.

use crate::eval::BitSet;
use mdtw_structure::fx::FxHashMap;
use mdtw_structure::{ElemId, Structure};
use std::collections::BTreeSet;

/// An interned rank-k type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

/// Canonical key of a type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum TypeKey {
    /// The atomic diagram, packed as bit words.
    Rank0(Vec<u64>),
    /// Rank k ≥ 1: own atomic diagram + reachable rank-(k−1) types.
    RankK {
        atoms: Vec<u64>,
        point_moves: BTreeSet<TypeId>,
        set_moves: BTreeSet<TypeId>,
    },
}

/// Hash-consing interner for MSO types. Share one interner across all
/// structures whose types must be comparable.
#[derive(Debug, Default)]
pub struct TypeInterner {
    map: FxHashMap<TypeKey, TypeId>,
}

impl TypeInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct types seen so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no types have been interned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn intern(&mut self, key: TypeKey) -> TypeId {
        let next = TypeId(self.map.len() as u32);
        *self.map.entry(key).or_insert(next)
    }

    /// The rank-`k` MSO type of `(𝒜, ā)` (no free set variables).
    pub fn type_of(&mut self, structure: &Structure, ind: &[ElemId], k: usize) -> TypeId {
        self.type_of_with_sets(structure, ind, &[], k)
    }

    /// The rank-`k` *first-order* type (point moves only). Sound and
    /// complete for formulas without set quantifiers; exponentially
    /// cheaper. The Theorem 4.5 compiler uses it for FO queries.
    pub fn fo_type_of(&mut self, structure: &Structure, ind: &[ElemId], k: usize) -> TypeId {
        self.type_impl(structure, ind, &[], k, false)
    }

    /// The rank-`k` MSO type of `(𝒜, ā, S̄)`.
    pub fn type_of_with_sets(
        &mut self,
        structure: &Structure,
        ind: &[ElemId],
        sets: &[BitSet],
        k: usize,
    ) -> TypeId {
        self.type_impl(structure, ind, sets, k, true)
    }

    fn type_impl(
        &mut self,
        structure: &Structure,
        ind: &[ElemId],
        sets: &[BitSet],
        k: usize,
        with_sets: bool,
    ) -> TypeId {
        let atoms = atomic_diagram(structure, ind, sets);
        if k == 0 {
            return self.intern(TypeKey::Rank0(atoms));
        }
        let n = structure.domain().len();
        let mut point_moves = BTreeSet::new();
        let mut ind_ext: Vec<ElemId> = ind.to_vec();
        ind_ext.push(ElemId(0));
        for c in structure.domain().elems() {
            *ind_ext.last_mut().expect("pushed") = c;
            point_moves.insert(self.type_impl(structure, &ind_ext, sets, k - 1, with_sets));
        }
        let mut set_moves = BTreeSet::new();
        if with_sets {
            assert!(n <= 24, "MSO set moves limited to ≤ 24 elements");
            let mut sets_ext: Vec<BitSet> = sets.to_vec();
            sets_ext.push(BitSet::empty(n));
            for bits in 0u64..(1u64 << n) {
                let mut s = BitSet::empty(n);
                for i in 0..n {
                    if bits >> i & 1 == 1 {
                        s.insert(ElemId(i as u32));
                    }
                }
                *sets_ext.last_mut().expect("pushed") = s;
                set_moves.insert(self.type_impl(structure, ind, &sets_ext, k - 1, with_sets));
            }
        }
        self.intern(TypeKey::RankK {
            atoms,
            point_moves,
            set_moves,
        })
    }

    /// `≡ᵏ_MSO` between two pointed structures over the same signature.
    pub fn equivalent(
        &mut self,
        a: &Structure,
        a_ind: &[ElemId],
        b: &Structure,
        b_ind: &[ElemId],
        k: usize,
    ) -> bool {
        self.type_of(a, a_ind, k) == self.type_of(b, b_ind, k)
    }
}

/// The atomic diagram of `(𝒜, ā, S̄)`: all predicate atoms over index
/// patterns of `ā`, all equalities `aᵢ = aⱼ`, all memberships `aᵢ ∈ Sⱼ`,
/// packed into bit words in a canonical order.
fn atomic_diagram(structure: &Structure, ind: &[ElemId], sets: &[BitSet]) -> Vec<u64> {
    let mut bits: Vec<bool> = Vec::new();
    let w = ind.len();
    // Predicate atoms: for each predicate, all index patterns (odometer).
    for p in structure.signature().preds() {
        let arity = structure.signature().arity(p);
        if arity > 0 && w == 0 {
            continue;
        }
        let mut pattern = vec![0usize; arity];
        loop {
            let tuple: Vec<ElemId> = pattern.iter().map(|&i| ind[i]).collect();
            bits.push(structure.holds(p, &tuple));
            let mut carry = 0;
            loop {
                if carry == arity {
                    break;
                }
                pattern[carry] += 1;
                if pattern[carry] < w {
                    break;
                }
                pattern[carry] = 0;
                carry += 1;
            }
            if carry == arity {
                break;
            }
        }
    }
    // Equalities.
    for i in 0..w {
        for j in i + 1..w {
            bits.push(ind[i] == ind[j]);
        }
    }
    // Set memberships.
    for s in sets {
        for &a in ind {
            bits.push(s.contains(a));
        }
    }
    // Pack.
    let mut words = vec![0u64; bits.len().div_ceil(64).max(1)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            words[i / 64] |= 1 << (i % 64);
        }
    }
    // Record the bit count so diagrams of different shapes never collide.
    words.push(bits.len() as u64);
    words
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{IndVar, Mso};
    use crate::eval::{eval_unary, Budget};
    use mdtw_structure::{Domain, Signature};
    use std::sync::Arc;

    fn path(n: usize) -> Structure {
        let sig = Arc::new(Signature::from_pairs([("e", 2)]));
        let dom = Domain::anonymous(n);
        let mut s = Structure::new(sig, dom);
        let e = s.signature().lookup("e").unwrap();
        for i in 0..n - 1 {
            s.insert(e, &[ElemId(i as u32), ElemId(i as u32 + 1)]);
        }
        s
    }

    #[test]
    fn types_are_reflexive() {
        let s = path(4);
        let mut ti = TypeInterner::new();
        for k in 0..=2 {
            assert!(ti.equivalent(&s, &[ElemId(1)], &s, &[ElemId(1)], k));
        }
    }

    #[test]
    fn isomorphic_points_share_types() {
        // Two separately built copies of the same structure: every point
        // is equivalent to its twin at every rank.
        let s1 = path(4);
        let s2 = path(4);
        let mut ti = TypeInterner::new();
        for k in 0..=2 {
            for e in s1.domain().elems() {
                assert!(ti.equivalent(&s1, &[e], &s2, &[e], k), "k={k}, {e}");
            }
        }
        // In the symmetric (undirected) path, the reversal x ↦ 3−x is an
        // automorphism: endpoints are equivalent, as are the middles.
        let sig = Arc::new(Signature::from_pairs([("e", 2)]));
        let dom = Domain::anonymous(4);
        let mut u = Structure::new(sig, dom);
        let e = u.signature().lookup("e").unwrap();
        for i in 0u32..3 {
            u.insert(e, &[ElemId(i), ElemId(i + 1)]);
            u.insert(e, &[ElemId(i + 1), ElemId(i)]);
        }
        for k in 0..=2 {
            assert!(
                ti.equivalent(&u, &[ElemId(0)], &u, &[ElemId(3)], k),
                "k={k}"
            );
            assert!(
                ti.equivalent(&u, &[ElemId(1)], &u, &[ElemId(2)], k),
                "k={k}"
            );
        }
    }

    #[test]
    fn rank1_distinguishes_endpoint_from_middle() {
        // "has an outgoing edge" needs one quantifier: endpoints and
        // middles of a directed path differ at rank 1 but not rank 0.
        let s = path(4);
        let mut ti = TypeInterner::new();
        assert!(ti.equivalent(&s, &[ElemId(0)], &s, &[ElemId(1)], 0));
        assert!(!ti.equivalent(&s, &[ElemId(0)], &s, &[ElemId(1)], 1));
    }

    #[test]
    fn types_respect_formula_agreement() {
        // If two pointed structures share their rank-k type, they agree on
        // a sample of formulas with quantifier depth ≤ k.
        let formulas: Vec<(usize, Mso)> = vec![
            (1, crate::library::has_neighbor()),
            (1, crate::library::isolated()),
        ];
        let x = IndVar(0);
        let structures = [path(3), path(4), path(5)];
        let mut ti = TypeInterner::new();
        for s1 in &structures {
            for s2 in &structures {
                for a in s1.domain().elems() {
                    for b in s2.domain().elems() {
                        for (k, f) in &formulas {
                            if ti.equivalent(s1, &[a], s2, &[b], *k) {
                                let va = eval_unary(f, x, s1, a, &mut Budget::unlimited()).unwrap();
                                let vb = eval_unary(f, x, s2, b, &mut Budget::unlimited()).unwrap();
                                assert_eq!(va, vb, "type-equal points disagree on {f}");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn different_structures_different_types() {
        // A 2-path and a 2-clique (both directions) differ already at
        // rank 0 with both elements distinguished.
        let p = path(2);
        let sig = Arc::new(Signature::from_pairs([("e", 2)]));
        let dom = Domain::anonymous(2);
        let mut c = Structure::new(sig, dom);
        let e = c.signature().lookup("e").unwrap();
        c.insert(e, &[ElemId(0), ElemId(1)]);
        c.insert(e, &[ElemId(1), ElemId(0)]);
        let mut ti = TypeInterner::new();
        assert!(!ti.equivalent(&p, &[ElemId(0), ElemId(1)], &c, &[ElemId(0), ElemId(1)], 0));
    }

    #[test]
    fn set_valuations_enter_the_type() {
        let s = path(3);
        let mut ti = TypeInterner::new();
        let mut s1 = BitSet::empty(3);
        s1.insert(ElemId(0));
        let s2 = BitSet::empty(3);
        let t1 = ti.type_of_with_sets(&s, &[ElemId(0)], &[s1], 0);
        let t2 = ti.type_of_with_sets(&s, &[ElemId(0)], &[s2], 0);
        assert_ne!(t1, t2);
    }
}
