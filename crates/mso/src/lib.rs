//! # mdtw-mso
//!
//! Monadic second-order logic for the *Monadic Datalog over Finite
//! Structures with Bounded Treewidth* reproduction (Gottlob, Pichler &
//! Wei, PODS 2007):
//!
//! * [`ast`] — MSO formulas (§2.3);
//! * [`eval`] — the naive model checker with a work budget: the stand-in
//!   for MONA in the Table 1 experiments (exponential data complexity,
//!   "out-of-memory" behaviour on anything non-tiny);
//! * [`types`] — rank-k MSO types via the Ehrenfeucht–Fraïssé recursion,
//!   hash-consed so type equality is id equality (§3);
//! * [`compile`] — the generic MSO→monadic-datalog transformation of
//!   Theorem 4.5, runnable at toy parameters and exploding (with a clean
//!   error) beyond them, exactly as the paper predicts;
//! * [`library`] — the paper's formulas: 3-Colorability (§5.1) and
//!   PRIMALITY (Example 2.6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod eval;
pub mod library;
pub mod types;

pub use ast::{IndVar, Mso, SetVar};
pub use compile::{compile_unary, CompileError, CompileLimits, CompiledQuery};
pub use eval::{eval_sentence, eval_unary, Assignment, BitSet, Budget, BudgetExhausted};
pub use library::{
    closed, has_neighbor, isolated, primality, three_colorability, two_colorability,
};
pub use types::{TypeId, TypeInterner};
