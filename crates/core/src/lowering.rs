//! Lowering the succinct 3-Colorability program to *ground monadic
//! datalog* — the other side of the Theorem 5.1 argument.
//!
//! The proof of Theorem 5.1 observes that `solve(s, R, G, B)` is "simply a
//! succinct representation of constantly many monadic predicates
//! solve⟨r1,r2,r3⟩(s)". This module materializes that monadic program for
//! a concrete input: one ground atom per (node, bag coloring) and one
//! ground rule per Figure 5 transition, evaluated by the linear-time LTUR
//! solver of `mdtw-datalog` (propositional datalog, §2.4 fact (1)).
//!
//! Unlike the dynamic program of [`crate::three_col`], the grounding
//! enumerates **all** candidate states at every node — including the ones
//! the bottom-up computation never reaches. Comparing the two quantifies
//! optimization (1) of the paper's §6 ("the vast majority of possible
//! instantiations is never computed since they are not reachable along
//! the bottom-up computation"); the `width_sweep` bench plots it.

use mdtw_datalog::{HornProgram, HornRule};
use mdtw_decomp::{NiceKind, NiceTd, NodeId};
use mdtw_graph::Graph;
use mdtw_structure::fx::FxHashMap;
use mdtw_structure::ElemId;

/// The materialized ground program plus bookkeeping.
#[derive(Debug)]
pub struct GroundThreeCol {
    /// The propositional program.
    pub horn: HornProgram,
    /// Atom 0 is `success`; the map stores (node, r, g) → atom id.
    atoms: FxHashMap<(u32, u64, u64), u32>,
}

impl GroundThreeCol {
    /// The number of ground atoms (materialized `solve⟨r,g,b⟩(s)` facts).
    pub fn atom_count(&self) -> usize {
        self.atoms.len() + 1
    }

    /// The number of ground rules.
    pub fn rule_count(&self) -> usize {
        self.horn.rules.len()
    }

    /// Evaluates the program; true iff `success` is in the least model.
    pub fn succeeds(&self) -> bool {
        self.horn.least_model()[0]
    }
}

/// All `(r, g)` partitions of an `n`-element bag.
fn all_states(n: usize) -> Vec<(u64, u64)> {
    let full: u64 = (1u64 << n) - 1;
    let mut out = Vec::new();
    for r in 0..=full {
        let rest = full & !r;
        let mut g = rest;
        loop {
            out.push((r, g));
            if g == 0 {
                break;
            }
            g = (g - 1) & rest;
        }
        if r == full {
            break;
        }
    }
    out
}

fn proper_class(graph: &Graph, bag: &[ElemId], class: u64) -> bool {
    let mut bits = class;
    while bits != 0 {
        let i = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        let mut rest = bits;
        while rest != 0 {
            let j = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            if graph.has_edge(bag[i].0, bag[j].0) {
                return false;
            }
        }
    }
    true
}

fn allowed(graph: &Graph, bag: &[ElemId], n: usize, r: u64, g: u64) -> bool {
    let full = (1u64 << n) - 1;
    let b = full & !(r | g);
    proper_class(graph, bag, r) && proper_class(graph, bag, g) && proper_class(graph, bag, b)
}

#[inline]
fn lift(mask: u64, at: usize) -> u64 {
    let low = mask & ((1u64 << at) - 1);
    let high = (mask >> at) << (at + 1);
    low | high
}

/// Materializes the Figure 5 program over `(graph, td)` as ground monadic
/// datalog. Size is `O(3^{w+1} · |td|)` — linear in the data for fixed
/// width, as Theorem 4.4 requires, but with the full `f(w)` constant paid
/// up front.
pub fn ground_three_col(graph: &Graph, td: &NiceTd) -> GroundThreeCol {
    let mut atoms: FxHashMap<(u32, u64, u64), u32> = FxHashMap::default();
    let mut horn = HornProgram::default();
    // Atom 0 = success.
    let intern = |atoms: &mut FxHashMap<(u32, u64, u64), u32>, node: NodeId, r: u64, g: u64| {
        let next = atoms.len() as u32 + 1;
        *atoms.entry((node.0, r, g)).or_insert(next)
    };

    for node in td.post_order() {
        let bag = td.bag(node);
        let n = bag.len();
        match td.kind(node) {
            NiceKind::Leaf => {
                for (r, g) in all_states(n) {
                    if allowed(graph, bag, n, r, g) {
                        let head = intern(&mut atoms, node, r, g);
                        horn.rules.push(HornRule { head, body: vec![] });
                    }
                }
            }
            NiceKind::Introduce(v) => {
                let child = td.node(node).children[0];
                let vpos = bag.binary_search(&v).expect("introduced in bag");
                for (r, g) in all_states(n - 1) {
                    let body_atom = intern(&mut atoms, child, r, g);
                    let (lr, lg) = (lift(r, vpos), lift(g, vpos));
                    for color in 0..3u8 {
                        let (nr, ng) = match color {
                            0 => (lr | 1 << vpos, lg),
                            1 => (lr, lg | 1 << vpos),
                            _ => (lr, lg),
                        };
                        if allowed(graph, bag, n, nr, ng) {
                            let head = intern(&mut atoms, node, nr, ng);
                            horn.rules.push(HornRule {
                                head,
                                body: vec![body_atom],
                            });
                        }
                    }
                }
            }
            NiceKind::Forget(v) => {
                let child = td.node(node).children[0];
                let child_bag = td.bag(child);
                let vpos = child_bag.binary_search(&v).expect("forgotten in child");
                let drop = |mask: u64| -> u64 {
                    let low = mask & ((1u64 << vpos) - 1);
                    let high = (mask >> (vpos + 1)) << vpos;
                    low | high
                };
                for (r, g) in all_states(n + 1) {
                    let body_atom = intern(&mut atoms, child, r, g);
                    let head = intern(&mut atoms, node, drop(r), drop(g));
                    horn.rules.push(HornRule {
                        head,
                        body: vec![body_atom],
                    });
                }
            }
            NiceKind::Branch => {
                let children = &td.node(node).children;
                let (c1, c2) = (children[0], children[1]);
                for (r, g) in all_states(n) {
                    let b1 = intern(&mut atoms, c1, r, g);
                    let b2 = intern(&mut atoms, c2, r, g);
                    let head = intern(&mut atoms, node, r, g);
                    horn.rules.push(HornRule {
                        head,
                        body: vec![b1, b2],
                    });
                }
            }
        }
    }
    // success ← solve(root, R, G, B) for every root state.
    let root = td.root();
    for (r, g) in all_states(td.bag(root).len()) {
        let body_atom = intern(&mut atoms, root, r, g);
        horn.rules.push(HornRule {
            head: 0,
            body: vec![body_atom],
        });
    }
    horn.n_atoms = atoms.len() + 1;
    GroundThreeCol { horn, atoms }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::three_col::ThreeColSolver;
    use mdtw_decomp::NiceOptions;
    use mdtw_graph::{complete, cycle, encode_graph, partial_k_tree, petersen, wheel};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn nice_of(g: &Graph) -> NiceTd {
        let s = encode_graph(g);
        let td = mdtw_decomp::decompose(&s, mdtw_decomp::Heuristic::MinFill);
        NiceTd::from_td(&td, NiceOptions::default())
    }

    #[test]
    fn grounding_agrees_with_dp_on_classics() {
        for (g, expect) in [
            (cycle(5), true),
            (complete(4), false),
            (wheel(5), false),
            (wheel(6), true),
            (petersen(), true),
        ] {
            let td = nice_of(&g);
            let ground = ground_three_col(&g, &td);
            assert_eq!(ground.succeeds(), expect, "{g}");
            let dp = ThreeColSolver::run(&g, &td);
            assert_eq!(ground.succeeds(), dp.is_colorable(), "{g}");
        }
    }

    #[test]
    fn grounding_agrees_with_dp_on_random_inputs() {
        let mut rng = SmallRng::seed_from_u64(77);
        for i in 0..12 {
            let (g, td) = partial_k_tree(&mut rng, 14 + i, 2 + i % 3, 0.8);
            let nice = NiceTd::from_td(&td, NiceOptions::default());
            let ground = ground_three_col(&g, &nice);
            let dp = ThreeColSolver::run(&g, &nice);
            assert_eq!(ground.succeeds(), dp.is_colorable(), "instance {i}");
        }
    }

    #[test]
    fn grounding_materializes_more_facts_than_dp_reaches() {
        // §6 optimization (1): the DP table is (weakly) smaller than the
        // full materialization at every width.
        let mut rng = SmallRng::seed_from_u64(3);
        let (g, td) = partial_k_tree(&mut rng, 20, 3, 0.7);
        let nice = NiceTd::from_td(&td, NiceOptions::default());
        let ground = ground_three_col(&g, &nice);
        let dp = ThreeColSolver::run(&g, &nice);
        assert!(ground.atom_count() >= dp.fact_count);
        assert!(ground.rule_count() > 0);
    }

    #[test]
    fn state_enumeration_counts() {
        assert_eq!(all_states(0).len(), 1);
        assert_eq!(all_states(1).len(), 3);
        assert_eq!(all_states(2).len(), 9);
        assert_eq!(all_states(3).len(), 27);
    }
}
