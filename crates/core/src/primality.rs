//! The PRIMALITY program of Figure 6 (paper §5.2) and its enumeration
//! variant (§5.3, Theorem 5.4).
//!
//! An attribute `a` is *prime* iff there is an attribute set `Y` closed
//! under `F` with `a ∉ Y` and `(Y ∪ {a})⁺ = R` (Example 2.6). The program
//! certifies this via `solve(s, Y, FY, C°, ΔC, FC)` facts over a nice tree
//! decomposition of the {fd, att, lh, rh} structure, where (Property B):
//!
//! * `Y` / `C°` — the bag-local projection of `𝒴` and of the *ordered*
//!   complement `R ∖ 𝒴` (ordered by a derivation sequence from `𝒴 ∪ {a}`),
//! * `FY` — bag FDs already *verified* not to contradict closedness of `𝒴`
//!   (some left-hand-side attribute seen outside `𝒴`),
//! * `FC` — bag FDs used by the derivation sequence,
//! * `ΔC` — bag attributes of `C°` whose derivation has been witnessed.
//!
//! All six components are subsets/orderings of one bag, so a fact packs
//! into a few machine words — the "succinct representation of constantly
//! many monadic predicates solve⟨r1,…,r5⟩(s)" of Theorem 5.3's proof.
//!
//! The decomposition must satisfy the §5.2 convention that every bag
//! containing an FD also contains its right-hand-side attribute
//! ([`PrimalityContext`] enforces it via bag augmentation).

use mdtw_decomp::{
    augment_bags, decompose, Heuristic, NiceKind, NiceOptions, NiceTd, NodeId, TreeDecomposition,
};
use mdtw_schema::{encode_schema, AttrId, Schema, SchemaEncoding};
use mdtw_structure::fx::{FxHashMap, FxHashSet};
use mdtw_structure::ElemId;

/// One `solve` fact, packed bag-locally. Attribute components are bitmasks
/// over the sorted *attribute positions* of the bag; FD components over
/// the sorted *FD positions*. `co` stores the ordering of the complement
/// `C°` as 4-bit attribute positions (lowest nibble first); its length is
/// `#bag-attrs − popcount(y)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrimState {
    /// Bag attributes in `Y`.
    pub y: u16,
    /// Bag attributes with a witnessed derivation (`ΔC ⊆ C°`).
    pub dc: u16,
    /// Bag FDs verified non-contradicting (`FY`).
    pub fy: u16,
    /// Bag FDs used in the derivation (`FC`).
    pub fc: u16,
    /// The order of `C°`, packed in nibbles.
    pub co: u64,
}

// --- nibble-sequence helpers for the C° ordering ---------------------------

#[inline]
fn co_get(co: u64, i: usize) -> u8 {
    ((co >> (4 * i)) & 0xF) as u8
}

#[inline]
fn co_insert(co: u64, len: usize, k: usize, pos: u8) -> u64 {
    debug_assert!(k <= len && len < 16);
    let low_mask = (1u64 << (4 * k)) - 1;
    let low = co & low_mask;
    let high = (co & !low_mask) << 4;
    low | ((pos as u64) << (4 * k)) | high
}

#[inline]
fn co_remove(co: u64, k: usize) -> u64 {
    let low_mask = (1u64 << (4 * k)) - 1;
    let low = co & low_mask;
    let high = (co >> (4 * (k + 1))) << (4 * k);
    low | high
}

#[inline]
fn co_index_of(co: u64, len: usize, pos: u8) -> Option<usize> {
    (0..len).find(|&i| co_get(co, i) == pos)
}

#[inline]
fn co_map(co: u64, len: usize, f: impl Fn(u8) -> u8) -> u64 {
    let mut out = 0u64;
    for i in 0..len {
        out |= (f(co_get(co, i)) as u64) << (4 * i);
    }
    out
}

/// Lifts a bitmask when a new position is inserted at `at`.
#[inline]
fn mask_lift(mask: u16, at: usize) -> u16 {
    let m = mask as u32;
    let low = m & ((1u32 << at) - 1);
    let high = (m >> at) << (at + 1);
    (low | high) as u16
}

/// Drops position `at` from a bitmask (the bit at `at` is discarded).
#[inline]
fn mask_drop(mask: u16, at: usize) -> u16 {
    let m = mask as u32;
    let low = m & ((1u32 << at) - 1);
    let high = (m >> (at + 1)) << at;
    (low | high) as u16
}

// --- bag context ------------------------------------------------------------

/// The split of a bag into attribute and FD elements (both sorted).
#[derive(Debug, Clone, Default)]
struct BagCtx {
    attrs: Vec<ElemId>,
    fds: Vec<ElemId>,
}

impl BagCtx {
    fn attr_pos(&self, e: ElemId) -> Option<usize> {
        self.attrs.binary_search(&e).ok()
    }

    fn fd_pos(&self, e: ElemId) -> Option<usize> {
        self.fds.binary_search(&e).ok()
    }
}

/// Per-element classification derived from the τ-structure.
#[derive(Debug, Clone)]
enum ElemInfo {
    Attr,
    Fd { rhs: ElemId, lhs: Vec<ElemId> },
}

/// Everything needed to run the Figure 6 / §5.3 computations: the encoded
/// schema, an rhs-augmented nice tree decomposition and per-bag contexts.
#[derive(Debug)]
pub struct PrimalityContext {
    /// The τ-structure encoding of the schema.
    pub encoding: SchemaEncoding,
    /// The nice tree decomposition (every element occurs in a leaf bag,
    /// supporting the §5.3 `prime()` rule).
    pub nice: NiceTd,
    info: Vec<ElemInfo>,
    bags: Vec<BagCtx>,
}

/// Statistics of a solver run (for the Table 1 harness and ablations).
#[derive(Debug, Clone, Copy, Default)]
pub struct PrimStats {
    /// Total `solve` facts across all nodes (bottom-up pass).
    pub up_facts: usize,
    /// Total `solve↓` facts (top-down pass; 0 for pure decisions).
    pub down_facts: usize,
    /// Number of decomposition nodes.
    pub nodes: usize,
    /// Decomposition width.
    pub width: usize,
}

impl PrimalityContext {
    /// Builds a context from a schema: encode, decompose (min-fill),
    /// augment bags with rhs attributes, convert to the nice form.
    pub fn new(schema: &Schema) -> Self {
        let encoding = encode_schema(schema);
        let td = decompose(&encoding.structure, Heuristic::MinFill);
        Self::from_parts(encoding, td)
    }

    /// Builds a context from an existing decomposition (e.g. the generated
    /// workloads of §6). The decomposition is rerooted/augmented as needed.
    pub fn from_parts(encoding: SchemaEncoding, mut td: TreeDecomposition) -> Self {
        let info = Self::classify(&encoding);
        // §5.2: every bag containing an FD must contain its rhs attribute.
        let info_ref = &info;
        augment_bags(&mut td, |e| match &info_ref[e.index()] {
            ElemInfo::Fd { rhs, .. } => vec![*rhs],
            ElemInfo::Attr => Vec::new(),
        });
        let rank = |e: ElemId| match info_ref[e.index()] {
            ElemInfo::Fd { .. } => 1u8,
            ElemInfo::Attr => 0u8,
        };
        let nice = NiceTd::from_td_with_rank(
            &td,
            NiceOptions {
                every_elem_in_leaf: true,
            },
            &rank,
        );
        Self::assemble(encoding, nice, info)
    }

    /// Like [`from_parts`](Self::from_parts) but reroots the decomposition
    /// at a bag containing `target` first (the decision problem of §5.2
    /// requires the queried attribute in the root bag).
    pub fn for_decision(
        encoding: SchemaEncoding,
        mut td: TreeDecomposition,
        target: AttrId,
    ) -> Self {
        let info = Self::classify(&encoding);
        let elem = encoding.elem_of_attr(target);
        let host = td
            .node_ids()
            .find(|&n| td.bag_contains(n, elem))
            .expect("attribute occurs in some bag");
        td.reroot(host);
        let info_ref = &info;
        augment_bags(&mut td, |e| match &info_ref[e.index()] {
            ElemInfo::Fd { rhs, .. } => vec![*rhs],
            ElemInfo::Attr => Vec::new(),
        });
        let rank = |e: ElemId| match info_ref[e.index()] {
            ElemInfo::Fd { .. } => 1u8,
            ElemInfo::Attr => 0u8,
        };
        let nice = NiceTd::from_td_with_rank(&td, NiceOptions::default(), &rank);
        debug_assert!(nice.bag_contains(nice.root(), elem));
        Self::assemble(encoding, nice, info)
    }

    fn classify(encoding: &SchemaEncoding) -> Vec<ElemInfo> {
        let s = &encoding.structure;
        let n = s.domain().len();
        let lh = s.signature().lookup("lh").expect("lh");
        let rh = s.signature().lookup("rh").expect("rh");
        let fd = s.signature().lookup("fd").expect("fd");
        let mut rhs_of: FxHashMap<ElemId, ElemId> = FxHashMap::default();
        for t in s.relation(rh).iter() {
            rhs_of.insert(t[1], t[0]);
        }
        let mut lhs_of: FxHashMap<ElemId, Vec<ElemId>> = FxHashMap::default();
        for t in s.relation(lh).iter() {
            lhs_of.entry(t[1]).or_default().push(t[0]);
        }
        let mut info = Vec::with_capacity(n);
        for e in s.domain().elems() {
            if s.holds(fd, &[e]) {
                info.push(ElemInfo::Fd {
                    rhs: *rhs_of.get(&e).expect("FD has an rhs"),
                    lhs: lhs_of.remove(&e).unwrap_or_default(),
                });
            } else {
                info.push(ElemInfo::Attr);
            }
        }
        info
    }

    fn assemble(encoding: SchemaEncoding, nice: NiceTd, info: Vec<ElemInfo>) -> Self {
        let bags: Vec<BagCtx> = nice
            .node_ids()
            .map(|n| {
                let mut ctx = BagCtx::default();
                for &e in nice.bag(n) {
                    match info[e.index()] {
                        ElemInfo::Attr => ctx.attrs.push(e),
                        ElemInfo::Fd { .. } => ctx.fds.push(e),
                    }
                }
                assert!(ctx.attrs.len() <= 16, "bag attribute count exceeds 16");
                assert!(ctx.fds.len() <= 16, "bag FD count exceeds 16");
                ctx
            })
            .collect();
        Self {
            encoding,
            nice,
            info,
            bags,
        }
    }

    fn is_attr(&self, e: ElemId) -> bool {
        matches!(self.info[e.index()], ElemInfo::Attr)
    }

    fn fd_rhs(&self, f: ElemId) -> ElemId {
        match &self.info[f.index()] {
            ElemInfo::Fd { rhs, .. } => *rhs,
            ElemInfo::Attr => unreachable!("element is not an FD"),
        }
    }

    fn fd_lhs(&self, f: ElemId) -> &[ElemId] {
        match &self.info[f.index()] {
            ElemInfo::Fd { lhs, .. } => lhs,
            ElemInfo::Attr => unreachable!("element is not an FD"),
        }
    }

    // --- predicates of Figure 6 --------------------------------------------

    /// `outside(·, Y, At, {f})`: `rhs(f) ∉ Y` and some lhs attribute of `f`
    /// present in the bag lies outside `Y`.
    fn fd_outside(&self, bag: &BagCtx, y: u16, f: ElemId) -> bool {
        let rhs_pos = bag
            .attr_pos(self.fd_rhs(f))
            .expect("rhs attribute accompanies its FD in every bag");
        if y >> rhs_pos & 1 == 1 {
            return false;
        }
        self.fd_lhs(f)
            .iter()
            .any(|&b| bag.attr_pos(b).is_some_and(|p| y >> p & 1 == 0))
    }

    /// The full `outside(FY, Y, At, Fd)` mask over the bag's FDs.
    fn outside_mask(&self, bag: &BagCtx, y: u16) -> u16 {
        let mut fy = 0u16;
        for (j, &f) in bag.fds.iter().enumerate() {
            if self.fd_outside(bag, y, f) {
                fy |= 1 << j;
            }
        }
        fy
    }

    /// `consistent({f}, C°)`: `rhs(f) ∈ C°` and every lhs attribute of `f`
    /// that is in `C°` precedes `rhs(f)` in the order.
    fn fd_consistent(&self, bag: &BagCtx, y: u16, co: u64, co_len: usize, f: ElemId) -> bool {
        let rhs_pos = bag.attr_pos(self.fd_rhs(f)).expect("rhs in bag") as u8;
        let Some(rhs_idx) = co_index_of(co, co_len, rhs_pos) else {
            return false; // rhs ∈ Y
        };
        for &b in self.fd_lhs(f) {
            if let Some(p) = bag.attr_pos(b) {
                if y >> p & 1 == 1 {
                    continue; // lhs attribute in Y: no ordering constraint
                }
                match co_index_of(co, co_len, p as u8) {
                    Some(bi) if bi < rhs_idx => {}
                    _ => return false,
                }
            }
        }
        true
    }

    /// The positions `{rhs(f) | f ∈ fc}` as an attribute mask.
    fn rhs_mask(&self, bag: &BagCtx, fc: u16) -> u16 {
        let mut out = 0u16;
        let mut bits = fc;
        while bits != 0 {
            let j = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let pos = bag.attr_pos(self.fd_rhs(bag.fds[j])).expect("rhs in bag");
            out |= 1 << pos;
        }
        out
    }

    // --- the leaf rule -------------------------------------------------------

    /// All `solve` facts at a bag treated as a leaf (also the `solve↓`
    /// initialization at the root, whose envelope is the root alone).
    fn leaf_table(&self, bag: &BagCtx) -> FxHashSet<PrimState> {
        let na = bag.attrs.len();
        let nf = bag.fds.len();
        let mut out = FxHashSet::default();
        let full: u16 = if na == 16 { u16::MAX } else { (1 << na) - 1 };
        for y in 0..=full {
            if na == 0 && y > 0 {
                break;
            }
            let comp: Vec<u8> = (0..na as u8).filter(|&p| y >> p & 1 == 0).collect();
            permutations(&comp, &mut |order| {
                let co_len = order.len();
                let mut co = 0u64;
                for (i, &p) in order.iter().enumerate() {
                    co |= (p as u64) << (4 * i);
                }
                let fy = self.outside_mask(bag, y);
                // Enumerate FC ⊆ Fd with consistent FDs and distinct rhs.
                for fc_bits in 0u32..(1u32 << nf) {
                    let fc = fc_bits as u16;
                    let mut dc = 0u16;
                    let mut ok = true;
                    let mut bits = fc;
                    while bits != 0 {
                        let j = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let f = bag.fds[j];
                        if !self.fd_consistent(bag, y, co, co_len, f) {
                            ok = false;
                            break;
                        }
                        let rhs_pos = bag.attr_pos(self.fd_rhs(f)).expect("rhs in bag");
                        if dc >> rhs_pos & 1 == 1 {
                            ok = false; // two FDs deriving the same attribute
                            break;
                        }
                        dc |= 1 << rhs_pos;
                    }
                    if ok {
                        out.insert(PrimState { y, dc, fy, fc, co });
                    }
                }
            });
            if y == full {
                break; // avoid overflow when na == 16
            }
        }
        out
    }

    // --- introduction rules ---------------------------------------------------

    /// Attribute introduction (two rules of Figure 6): the destination bag
    /// adds attribute `b` to the source bag.
    fn intro_attr(
        &self,
        src: &FxHashSet<PrimState>,
        dst_bag: &BagCtx,
        b: ElemId,
    ) -> FxHashSet<PrimState> {
        let bpos = dst_bag.attr_pos(b).expect("introduced attr in bag");
        let na = dst_bag.attrs.len();
        let mut out = FxHashSet::default();
        for s in src {
            let co_len = na - 1 - (s.y.count_ones() as usize);
            let lifted_co = co_map(
                s.co,
                co_len,
                |p| if (p as usize) < bpos { p } else { p + 1 },
            );
            let y = mask_lift(s.y, bpos);
            let dc = mask_lift(s.dc, bpos);
            // Rule: b joins Y.
            out.insert(PrimState {
                y: y | 1 << bpos,
                dc,
                fy: s.fy,
                fc: s.fc,
                co: lifted_co,
            });
            // Rule: b joins C° (each insertion point; consistency with FC;
            // FY picks up newly witnessed FDs).
            for k in 0..=co_len {
                let co = co_insert(lifted_co, co_len, k, bpos as u8);
                let mut consistent = true;
                let mut bits = s.fc;
                while bits != 0 {
                    let j = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let f = dst_bag.fds[j];
                    if !self.fd_consistent(dst_bag, y, co, co_len + 1, f) {
                        consistent = false;
                        break;
                    }
                }
                if !consistent {
                    continue;
                }
                let fy = s.fy | self.outside_mask(dst_bag, y);
                out.insert(PrimState {
                    y,
                    dc,
                    fy,
                    fc: s.fc,
                    co,
                });
            }
        }
        out
    }

    /// FD introduction (three rules of Figure 6): the destination bag adds
    /// FD `f`.
    fn intro_fd(
        &self,
        src: &FxHashSet<PrimState>,
        dst_bag: &BagCtx,
        f: ElemId,
    ) -> FxHashSet<PrimState> {
        let fpos = dst_bag.fd_pos(f).expect("introduced FD in bag");
        let rhs_pos = dst_bag
            .attr_pos(self.fd_rhs(f))
            .expect("rhs accompanies FD") as u8;
        let na = dst_bag.attrs.len();
        let mut out = FxHashSet::default();
        for s in src {
            let fy = mask_lift(s.fy, fpos);
            let fc = mask_lift(s.fc, fpos);
            let co_len = na - s.y.count_ones() as usize;
            if s.y >> rhs_pos & 1 == 1 {
                // Case 1: rhs(f) ∈ Y — carry over.
                out.insert(PrimState {
                    y: s.y,
                    dc: s.dc,
                    fy,
                    fc,
                    co: s.co,
                });
                continue;
            }
            let witnessed = if self.fd_outside(dst_bag, s.y, f) {
                1u16 << fpos
            } else {
                0
            };
            // Case 3: rhs(f) ∈ C°, f unused.
            out.insert(PrimState {
                y: s.y,
                dc: s.dc,
                fy: fy | witnessed,
                fc,
                co: s.co,
            });
            // Case 2: rhs(f) ∈ C°, f used — rhs joins ΔC (⊎: must be new),
            // and f must be consistent with the order.
            if s.dc >> rhs_pos & 1 == 0 && self.fd_consistent(dst_bag, s.y, s.co, co_len, f) {
                out.insert(PrimState {
                    y: s.y,
                    dc: s.dc | 1 << rhs_pos,
                    fy: fy | witnessed,
                    fc: fc | 1 << fpos,
                    co: s.co,
                });
            }
        }
        out
    }

    // --- removal rules ----------------------------------------------------------

    /// Attribute removal (two rules): the destination bag lacks attribute
    /// `b`, which sits at position `bpos` of the source bag.
    fn remove_attr(
        &self,
        src: &FxHashSet<PrimState>,
        src_bag: &BagCtx,
        b: ElemId,
    ) -> FxHashSet<PrimState> {
        let bpos = src_bag.attr_pos(b).expect("removed attr in source bag");
        let na = src_bag.attrs.len();
        let mut out = FxHashSet::default();
        for s in src {
            let co_len = na - s.y.count_ones() as usize;
            if s.y >> bpos & 1 == 1 {
                // b was in Y.
                out.insert(PrimState {
                    y: mask_drop(s.y, bpos),
                    dc: mask_drop(s.dc, bpos),
                    fy: s.fy,
                    fc: s.fc,
                    co: co_map(
                        s.co,
                        co_len,
                        |p| if (p as usize) < bpos { p } else { p - 1 },
                    ),
                });
            } else {
                // b was in C°: its derivation must have been witnessed.
                if s.dc >> bpos & 1 == 0 {
                    continue;
                }
                let k = co_index_of(s.co, co_len, bpos as u8).expect("b in C°");
                let co = co_remove(s.co, k);
                out.insert(PrimState {
                    y: mask_drop(s.y, bpos),
                    dc: mask_drop(s.dc, bpos),
                    fy: s.fy,
                    fc: s.fc,
                    co: co_map(
                        co,
                        co_len - 1,
                        |p| if (p as usize) < bpos { p } else { p - 1 },
                    ),
                });
            }
        }
        out
    }

    /// FD removal (three rules): the destination bag lacks FD `f`.
    fn remove_fd(
        &self,
        src: &FxHashSet<PrimState>,
        src_bag: &BagCtx,
        f: ElemId,
    ) -> FxHashSet<PrimState> {
        let fpos = src_bag.fd_pos(f).expect("removed FD in source bag");
        let rhs_pos = src_bag
            .attr_pos(self.fd_rhs(f))
            .expect("rhs accompanies FD");
        let mut out = FxHashSet::default();
        for s in src {
            if s.y >> rhs_pos & 1 == 1 {
                // Case 1: rhs ∈ Y. Invariant: f ∉ FY, f ∉ FC.
                debug_assert_eq!(s.fy >> fpos & 1, 0);
                debug_assert_eq!(s.fc >> fpos & 1, 0);
                out.insert(PrimState {
                    y: s.y,
                    dc: s.dc,
                    fy: mask_drop(s.fy, fpos),
                    fc: mask_drop(s.fc, fpos),
                    co: s.co,
                });
            } else {
                // Cases 2 and 3: rhs ∈ C° — f must be verified (f ∈ FY).
                if s.fy >> fpos & 1 == 0 {
                    continue;
                }
                out.insert(PrimState {
                    y: s.y,
                    dc: s.dc,
                    fy: mask_drop(s.fy, fpos),
                    fc: mask_drop(s.fc, fpos),
                    co: s.co,
                });
            }
        }
        out
    }

    // --- branch rule ---------------------------------------------------------------

    /// Branch combination: same `Y`, same `C°` order, same `FC`; `FY` and
    /// `ΔC` are united, with `unique(ΔC₁, ΔC₂, FC)` forbidding an attribute
    /// from being derived in both subtrees by different FDs.
    fn branch_combine(
        &self,
        left: &FxHashSet<PrimState>,
        right: &FxHashSet<PrimState>,
        bag: &BagCtx,
    ) -> FxHashSet<PrimState> {
        let mut by_key: FxHashMap<(u16, u64, u16), Vec<(u16, u16)>> = FxHashMap::default();
        for s in right {
            by_key
                .entry((s.y, s.co, s.fc))
                .or_default()
                .push((s.fy, s.dc));
        }
        let mut out = FxHashSet::default();
        for s in left {
            let Some(partners) = by_key.get(&(s.y, s.co, s.fc)) else {
                continue;
            };
            let shared = self.rhs_mask(bag, s.fc);
            for &(fy2, dc2) in partners {
                if s.dc & dc2 != shared {
                    continue; // unique(ΔC₁, ΔC₂, FC) violated
                }
                out.insert(PrimState {
                    y: s.y,
                    dc: s.dc | dc2,
                    fy: s.fy | fy2,
                    fc: s.fc,
                    co: s.co,
                });
            }
        }
        out
    }

    // --- passes ----------------------------------------------------------------------

    /// The bottom-up pass: `solve` tables for every node (Figure 6).
    pub fn run_up(&self) -> Vec<FxHashSet<PrimState>> {
        let mut tables: Vec<FxHashSet<PrimState>> = vec![FxHashSet::default(); self.nice.len()];
        for node in self.nice.post_order() {
            let bag = &self.bags[node.index()];
            let table = match self.nice.kind(node) {
                NiceKind::Leaf => self.leaf_table(bag),
                NiceKind::Introduce(e) => {
                    let child = self.nice.node(node).children[0];
                    let src = &tables[child.index()];
                    if self.is_attr(e) {
                        self.intro_attr(src, bag, e)
                    } else {
                        self.intro_fd(src, bag, e)
                    }
                }
                NiceKind::Forget(e) => {
                    let child = self.nice.node(node).children[0];
                    let src = &tables[child.index()];
                    let src_bag = &self.bags[child.index()];
                    if self.is_attr(e) {
                        self.remove_attr(src, src_bag, e)
                    } else {
                        self.remove_fd(src, src_bag, e)
                    }
                }
                NiceKind::Branch => {
                    let children = &self.nice.node(node).children;
                    self.branch_combine(
                        &tables[children[0].index()],
                        &tables[children[1].index()],
                        bag,
                    )
                }
            };
            tables[node.index()] = table;
        }
        tables
    }

    /// The top-down pass of §5.3: `solve↓` tables describing the envelope
    /// `T̄_s` of every node. The root's envelope is the root alone, so its
    /// table is the leaf rule; every step down inverts the parent's kind
    /// (an introduction becomes a removal and vice versa; a branch merges
    /// the parent's envelope with the sibling's bottom-up table).
    pub fn run_down(&self, up: &[FxHashSet<PrimState>]) -> Vec<FxHashSet<PrimState>> {
        let mut down: Vec<FxHashSet<PrimState>> = vec![FxHashSet::default(); self.nice.len()];
        for node in self.nice.pre_order() {
            if node == self.nice.root() {
                down[node.index()] = self.leaf_table(&self.bags[node.index()]);
                continue;
            }
            let parent = self.nice.node(node).parent.expect("non-root");
            let parent_bag = &self.bags[parent.index()];
            let node_bag = &self.bags[node.index()];
            let table = match self.nice.kind(parent) {
                NiceKind::Introduce(e) => {
                    // Going down, e leaves the bag.
                    if self.is_attr(e) {
                        self.remove_attr(&down[parent.index()], parent_bag, e)
                    } else {
                        self.remove_fd(&down[parent.index()], parent_bag, e)
                    }
                }
                NiceKind::Forget(e) => {
                    // Going down, e (re-)enters the bag; in the envelope it
                    // is fresh (its occurrences lie below this child).
                    if self.is_attr(e) {
                        self.intro_attr(&down[parent.index()], node_bag, e)
                    } else {
                        self.intro_fd(&down[parent.index()], node_bag, e)
                    }
                }
                NiceKind::Branch => {
                    let siblings = &self.nice.node(parent).children;
                    let sibling = if siblings[0] == node {
                        siblings[1]
                    } else {
                        siblings[0]
                    };
                    self.branch_combine(&down[parent.index()], &up[sibling.index()], node_bag)
                }
                NiceKind::Leaf => unreachable!("leaf cannot be a parent"),
            };
            down[node.index()] = table;
        }
        down
    }

    /// The acceptance test of the `success` / `prime()` rules: some state
    /// at `node` has `a ∉ Y`, `FY = {f ∈ Fd | rhs(f) ∉ Y}` and
    /// `ΔC = C° ∖ {a}`.
    pub fn accepts(&self, node: NodeId, table: &FxHashSet<PrimState>, a: ElemId) -> bool {
        let bag = &self.bags[node.index()];
        let Some(apos) = bag.attr_pos(a) else {
            return false;
        };
        let na = bag.attrs.len();
        let full: u16 = if na == 16 { u16::MAX } else { (1 << na) - 1 };
        table.iter().any(|s| {
            if s.y >> apos & 1 == 1 {
                return false;
            }
            let co_mask = full & !s.y;
            if s.dc != co_mask & !(1 << apos) {
                return false;
            }
            s.fy == self.required_fy(bag, s.y)
        })
    }

    /// `{f ∈ Fd | rhs(f) ∉ Y}` as an FD mask.
    fn required_fy(&self, bag: &BagCtx, y: u16) -> u16 {
        let mut out = 0u16;
        for (j, &f) in bag.fds.iter().enumerate() {
            let rhs_pos = bag.attr_pos(self.fd_rhs(f)).expect("rhs in bag");
            if y >> rhs_pos & 1 == 0 {
                out |= 1 << j;
            }
        }
        out
    }
}

/// Enumerates permutations of `items`, invoking `f` on each.
fn permutations(items: &[u8], f: &mut impl FnMut(&[u8])) {
    let mut buf: Vec<u8> = items.to_vec();
    permute_rec(&mut buf, 0, f);
}

fn permute_rec(buf: &mut Vec<u8>, k: usize, f: &mut impl FnMut(&[u8])) {
    if k == buf.len() {
        f(buf);
        return;
    }
    for i in k..buf.len() {
        buf.swap(k, i);
        permute_rec(buf, k + 1, f);
        buf.swap(k, i);
    }
}

// --- public API ------------------------------------------------------------------------

/// The PRIMALITY decision problem (§5.2): is `attr` part of a key?
/// Runs in time `f(w) · |(R, F)|` given bounded treewidth (Theorem 5.3).
pub fn is_prime_fpt(schema: &Schema, attr: AttrId) -> bool {
    let encoding = encode_schema(schema);
    let td = decompose(&encoding.structure, Heuristic::MinFill);
    is_prime_fpt_with_td(encoding, td, attr)
}

/// Decision variant reusing a caller-supplied decomposition.
pub fn is_prime_fpt_with_td(encoding: SchemaEncoding, td: TreeDecomposition, attr: AttrId) -> bool {
    let ctx = PrimalityContext::for_decision(encoding, td, attr);
    let up = ctx.run_up();
    let root = ctx.nice.root();
    ctx.accepts(root, &up[root.index()], ctx.encoding.elem_of_attr(attr))
}

/// The PRIMALITY enumeration problem (§5.3, Theorem 5.4): all prime
/// attributes in a single bottom-up + top-down sweep (linear time for
/// bounded treewidth, instead of the quadratic "re-root for every
/// attribute" approach).
pub fn prime_attributes_fpt(schema: &Schema) -> Vec<AttrId> {
    let ctx = PrimalityContext::new(schema);
    let (primes, _) = enumerate_primes(&ctx);
    primes
        .into_iter()
        .map(|e| ctx.encoding.attr_of_elem(e).expect("attr element"))
        .collect()
}

/// Enumeration on a prepared context; returns prime attribute *elements*
/// and run statistics.
pub fn enumerate_primes(ctx: &PrimalityContext) -> (Vec<ElemId>, PrimStats) {
    let up = ctx.run_up();
    let down = ctx.run_down(&up);
    let mut stats = PrimStats {
        up_facts: up.iter().map(FxHashSet::len).sum(),
        down_facts: down.iter().map(FxHashSet::len).sum(),
        nodes: ctx.nice.len(),
        width: ctx.nice.width(),
    };
    let mut primes: FxHashSet<ElemId> = FxHashSet::default();
    for leaf in ctx.nice.leaves() {
        let table = &down[leaf.index()];
        for &e in ctx.nice.bag(leaf) {
            if ctx.is_attr(e) && !primes.contains(&e) && ctx.accepts(leaf, table, e) {
                primes.insert(e);
            }
        }
    }
    let mut out: Vec<ElemId> = primes.into_iter().collect();
    out.sort_unstable();
    stats.nodes = ctx.nice.len();
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdtw_schema::{block_tree_instance, example_2_1, random_schema, seeded_rng};

    #[test]
    fn running_example_decision() {
        // Example 2.1: a, b, c, d prime; e, g not.
        let schema = example_2_1();
        for (name, expect) in [
            ("a", true),
            ("b", true),
            ("c", true),
            ("d", true),
            ("e", false),
            ("g", false),
        ] {
            let attr = schema.attr(name).unwrap();
            assert_eq!(is_prime_fpt(&schema, attr), expect, "attribute {name}");
        }
    }

    #[test]
    fn running_example_enumeration() {
        let schema = example_2_1();
        let primes = prime_attributes_fpt(&schema);
        let rendered = schema.render_set(&primes);
        assert_eq!(rendered, "abcd");
    }

    #[test]
    fn enumeration_matches_decision_on_random_schemas() {
        let mut rng = seeded_rng(11);
        for i in 0..20 {
            let schema = random_schema(&mut rng, 4 + i % 3, 2 + i % 3, 3);
            let primes = prime_attributes_fpt(&schema);
            for attr in schema.attrs() {
                assert_eq!(
                    primes.contains(&attr),
                    is_prime_fpt(&schema, attr),
                    "instance {i}, attr {attr:?}"
                );
            }
        }
    }

    #[test]
    fn agrees_with_exact_key_enumeration_on_random_schemas() {
        let mut rng = seeded_rng(23);
        for i in 0..25 {
            let schema = random_schema(&mut rng, 4 + i % 3, 2 + i % 4, 3);
            let fpt = prime_attributes_fpt(&schema);
            let exact = schema.prime_attributes_exact();
            assert_eq!(fpt, exact, "instance {i}: {schema}");
        }
    }

    #[test]
    fn generated_block_trees_have_known_primes() {
        for k in [1, 2, 3, 5, 8] {
            let inst = block_tree_instance(k);
            let ctx = PrimalityContext::from_parts(inst.encoding, inst.td);
            let (prime_elems, stats) = enumerate_primes(&ctx);
            let primes: Vec<AttrId> = prime_elems
                .iter()
                .map(|&e| ctx.encoding.attr_of_elem(e).unwrap())
                .collect();
            assert_eq!(primes, inst.expected_primes, "k={k}");
            assert!(stats.up_facts > 0);
        }
    }

    #[test]
    fn schema_without_fds_has_all_attributes_prime() {
        let mut schema = Schema::new();
        for n in ["x", "y", "z"] {
            schema.add_attr(n);
        }
        let primes = prime_attributes_fpt(&schema);
        assert_eq!(primes.len(), 3);
        for a in schema.attrs() {
            assert!(is_prime_fpt(&schema, a));
        }
    }

    #[test]
    fn single_fd_schema() {
        // x → y: key = {x, z}; y not prime.
        let mut schema = Schema::new();
        let x = schema.add_attr("x");
        let y = schema.add_attr("y");
        let z = schema.add_attr("z");
        schema.add_fd(&[x], y);
        assert!(is_prime_fpt(&schema, x));
        assert!(!is_prime_fpt(&schema, y));
        assert!(is_prime_fpt(&schema, z));
        assert_eq!(prime_attributes_fpt(&schema), vec![x, z]);
    }

    #[test]
    fn cyclic_fds() {
        // x → y, y → x, plus z: keys {x, z} and {y, z}.
        let mut schema = Schema::new();
        let x = schema.add_attr("x");
        let y = schema.add_attr("y");
        let z = schema.add_attr("z");
        schema.add_fd(&[x], y);
        schema.add_fd(&[y], x);
        assert_eq!(prime_attributes_fpt(&schema), vec![x, y, z]);
    }

    #[test]
    fn nibble_helpers() {
        let co = 0u64;
        let co = co_insert(co, 0, 0, 3); // [3]
        let co = co_insert(co, 1, 0, 5); // [5, 3]
        let co = co_insert(co, 2, 2, 7); // [5, 3, 7]
        assert_eq!(co_get(co, 0), 5);
        assert_eq!(co_get(co, 1), 3);
        assert_eq!(co_get(co, 2), 7);
        assert_eq!(co_index_of(co, 3, 3), Some(1));
        assert_eq!(co_index_of(co, 3, 9), None);
        let co = co_remove(co, 1); // [5, 7]
        assert_eq!(co_get(co, 0), 5);
        assert_eq!(co_get(co, 1), 7);
        let mapped = co_map(co, 2, |p| p + 1);
        assert_eq!(co_get(mapped, 0), 6);
        assert_eq!(co_get(mapped, 1), 8);
    }

    #[test]
    fn mask_helpers() {
        assert_eq!(mask_lift(0b1011, 2), 0b10011);
        assert_eq!(mask_drop(0b10011, 2), 0b1011);
        assert_eq!(mask_lift(0b1, 0), 0b10);
        assert_eq!(mask_drop(0b10, 0), 0b1);
    }
}

/// The FPT third-normal-form test the paper motivates in §2.1: 3NF
/// violations computed with the Figure 6 primality oracle, so the whole
/// check is fixed-parameter linear for bounded treewidth (one §5.3
/// enumeration pass supplies every primality answer at once).
pub fn third_nf_violations_fpt(schema: &Schema) -> Vec<mdtw_schema::ThirdNfViolation> {
    let primes = prime_attributes_fpt(schema);
    mdtw_schema::third_nf_violations_with(schema, |a| primes.binary_search(&a).is_ok())
}

/// True if the schema is in third normal form (FPT test).
pub fn is_3nf_fpt(schema: &Schema) -> bool {
    third_nf_violations_fpt(schema).is_empty()
}

#[cfg(test)]
mod nf_tests {
    use super::*;
    use mdtw_schema::{example_2_1, is_3nf_exact, random_schema, seeded_rng};

    #[test]
    fn fpt_3nf_matches_exact_on_running_example() {
        let schema = example_2_1();
        assert!(!is_3nf_fpt(&schema));
        assert_eq!(is_3nf_fpt(&schema), is_3nf_exact(&schema));
    }

    #[test]
    fn fpt_3nf_matches_exact_on_random_schemas() {
        let mut rng = seeded_rng(404);
        for i in 0..25 {
            let schema = random_schema(&mut rng, 4 + i % 3, 2 + i % 4, 3);
            assert_eq!(
                is_3nf_fpt(&schema),
                is_3nf_exact(&schema),
                "instance {i}: {schema}"
            );
        }
    }

    #[test]
    fn violations_identify_offending_fds() {
        let schema = example_2_1();
        let violations = third_nf_violations_fpt(&schema);
        assert!(!violations.is_empty());
        for v in &violations {
            let fd = &schema.fds()[v.fd_index];
            assert_eq!(fd.rhs, v.rhs);
            assert!(!schema.is_superkey(&fd.lhs));
        }
    }
}
