//! # mdtw-core
//!
//! The core contribution of *Monadic Datalog over Finite Structures with
//! Bounded Treewidth* (Gottlob, Pichler & Wei, PODS 2007): monadic datalog
//! over τ_td put to work.
//!
//! * [`three_col`] — the 3-Colorability program of Figure 5 (§5.1), as a
//!   direct dynamic program over the nice decomposition (the role the
//!   authors' C++ prototype plays) with witness extraction;
//! * [`primality`] — the PRIMALITY decision program of Figure 6 (§5.2) and
//!   the linear-time enumeration of §5.3 (Theorem 5.4);
//! * [`lowering`] — the succinct program materialized as ground monadic
//!   datalog (the Theorem 5.1 "succinct representation" argument made
//!   executable, and the §6 optimization-(1) ablation);
//! * [`abduction`] — the §7 bridge to propositional abduction over
//!   definite Horn theories (relevance ≈ primality).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abduction;
pub mod lowering;
pub mod primality;
pub mod three_col;

pub use abduction::{instance_from_clauses, AbductionInstance};
pub use lowering::{ground_three_col, GroundThreeCol};
pub use primality::{
    enumerate_primes, is_3nf_fpt, is_prime_fpt, is_prime_fpt_with_td, prime_attributes_fpt,
    third_nf_violations_fpt, PrimState, PrimStats, PrimalityContext,
};
pub use three_col::{is_three_colorable_fpt, three_coloring_fpt, ColorState, ThreeColSolver};
