//! Propositional abduction over definite Horn theories (paper §7).
//!
//! The conclusion of the paper points out that the *relevance* problem of
//! propositional abduction — is hypothesis `h` part of some minimal
//! explanation of the observed manifestations? — is "basically the same
//! as the problem of deciding primality in a subschema" when the theory
//! is definite Horn and explanations are minimal. This module implements
//! that bridge: a definite Horn theory is a relational schema in disguise
//! (clause `b₁ ∧ … ∧ b_k → h` ↔ FD `b₁…b_k → h`), explanations are
//! hypothesis sets whose closure covers the manifestations, and relevance
//! reduces to membership in a minimal covering set.
//!
//! The solver here is the *exact* (exponential) reference; the paper
//! defers the FPT datalog treatment of general clausal abduction to its
//! \[20\]. Tests cross-check the reduction against brute force.

use mdtw_schema::{AttrId, Schema};

/// A definite-Horn abduction instance: the theory lives in `schema`
/// (variables = attributes, clauses = FDs), with designated hypothesis
/// and manifestation variables.
#[derive(Debug, Clone)]
pub struct AbductionInstance {
    /// The theory as a schema.
    pub schema: Schema,
    /// Hypotheses `H ⊆ R`.
    pub hypotheses: Vec<AttrId>,
    /// Manifestations `M ⊆ R`.
    pub manifestations: Vec<AttrId>,
}

impl AbductionInstance {
    /// True if `explanation ⊆ H` entails all manifestations.
    pub fn explains(&self, explanation: &[AttrId]) -> bool {
        let closure = self.schema.closure(explanation);
        self.manifestations.iter().all(|m| closure.contains(m))
    }

    /// True if `explanation` is a *minimal* explanation.
    pub fn is_minimal_explanation(&self, explanation: &[AttrId]) -> bool {
        if !self.explains(explanation) {
            return false;
        }
        (0..explanation.len()).all(|i| {
            let mut smaller = explanation.to_vec();
            smaller.remove(i);
            !self.explains(&smaller)
        })
    }

    /// Shrinks an explanation to a minimal one, preferring to drop
    /// elements other than `keep` first (so a relevant hypothesis
    /// survives minimization when possible).
    fn minimize_keeping(&self, explanation: &[AttrId], keep: Option<AttrId>) -> Vec<AttrId> {
        let mut e = explanation.to_vec();
        // Try dropping non-kept attributes first, then the kept one.
        let mut order: Vec<usize> = (0..e.len()).collect();
        if let Some(k) = keep {
            order.sort_by_key(|&i| e[i] == k);
        }
        let mut i = 0;
        while i < order.len() {
            let mut candidate = e.clone();
            let victim = order[i];
            candidate.remove(victim);
            if self.explains(&candidate) {
                e = candidate;
                order.remove(i);
                for o in &mut order {
                    if *o > victim {
                        *o -= 1;
                    }
                }
            } else {
                i += 1;
            }
        }
        e
    }

    /// Exact relevance: is `h` a member of some minimal explanation?
    /// NP-hard in general; this reference implementation enumerates
    /// subsets of `H ∖ {h}` and is limited to `|H| ≤ 22`.
    pub fn relevant_bruteforce(&self, h: AttrId) -> bool {
        if !self.hypotheses.contains(&h) {
            return false;
        }
        let others: Vec<AttrId> = self
            .hypotheses
            .iter()
            .copied()
            .filter(|&x| x != h)
            .collect();
        assert!(others.len() <= 22, "brute force limited to |H| ≤ 22");
        for mask in 0u64..(1u64 << others.len()) {
            let mut e: Vec<AttrId> = (0..others.len())
                .filter(|i| mask >> i & 1 == 1)
                .map(|i| others[i])
                .collect();
            e.push(h);
            if self.is_minimal_explanation(&e) {
                return true;
            }
        }
        false
    }

    /// Relevance via greedy minimization (the subschema-primality view):
    /// `h` is relevant iff some explanation containing `h` minimizes to a
    /// minimal explanation still containing `h`; greedily dropping the
    /// other hypotheses first finds one whenever it exists.
    pub fn relevant(&self, h: AttrId) -> bool {
        if !self.hypotheses.contains(&h) || !self.explains(&self.hypotheses.clone()) {
            return false;
        }
        let e = self.minimize_keeping(&self.hypotheses.clone(), Some(h));
        if e.contains(&h) && self.is_minimal_explanation(&e) {
            return true;
        }
        // Greedy from the full set can get stuck; fall back to the exact
        // search (still exponential — relevance is NP-hard).
        self.relevant_bruteforce(h)
    }

    /// All minimal explanations (exponential; for tests and examples).
    pub fn minimal_explanations(&self) -> Vec<Vec<AttrId>> {
        let h = &self.hypotheses;
        assert!(h.len() <= 22, "enumeration limited to |H| ≤ 22");
        let mut out: Vec<Vec<AttrId>> = Vec::new();
        for mask in 0u64..(1u64 << h.len()) {
            let e: Vec<AttrId> = (0..h.len())
                .filter(|i| mask >> i & 1 == 1)
                .map(|i| h[i])
                .collect();
            if self.is_minimal_explanation(&e) {
                out.push(e);
            }
        }
        out.sort();
        out
    }
}

/// Builds an abduction instance from clause syntax: variables are named,
/// clauses are `(body, head)` pairs.
pub fn instance_from_clauses(
    variables: &[&str],
    clauses: &[(&[&str], &str)],
    hypotheses: &[&str],
    manifestations: &[&str],
) -> AbductionInstance {
    let mut schema = Schema::new();
    for v in variables {
        schema.add_attr(*v);
    }
    for (body, head) in clauses {
        let lhs: Vec<AttrId> = body
            .iter()
            .map(|b| schema.attr(b).expect("declared variable"))
            .collect();
        let rhs = schema.attr(head).expect("declared variable");
        schema.add_fd(&lhs, rhs);
    }
    let resolve = |names: &[&str], schema: &Schema| -> Vec<AttrId> {
        names
            .iter()
            .map(|n| schema.attr(n).expect("declared variable"))
            .collect()
    };
    let hypotheses = resolve(hypotheses, &schema);
    let manifestations = resolve(manifestations, &schema);
    AbductionInstance {
        schema,
        hypotheses,
        manifestations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small diagnosis theory:
    ///   broken_pump ∧ power → no_water
    ///   clogged_pipe → no_water
    ///   power → lights
    fn diagnosis() -> AbductionInstance {
        instance_from_clauses(
            &["broken_pump", "power", "clogged_pipe", "no_water", "lights"],
            &[
                (&["broken_pump", "power"], "no_water"),
                (&["clogged_pipe"], "no_water"),
                (&["power"], "lights"),
            ],
            &["broken_pump", "power", "clogged_pipe"],
            &["no_water", "lights"],
        )
    }

    #[test]
    fn minimal_explanations_of_diagnosis() {
        let inst = diagnosis();
        let expl = inst.minimal_explanations();
        // {broken_pump, power} and {clogged_pipe, power}.
        assert_eq!(expl.len(), 2);
        for e in &expl {
            assert!(inst.is_minimal_explanation(e));
            assert_eq!(e.len(), 2);
        }
    }

    #[test]
    fn relevance_matches_bruteforce() {
        let inst = diagnosis();
        for &h in &inst.hypotheses {
            assert_eq!(inst.relevant(h), inst.relevant_bruteforce(h));
            // All three hypotheses are relevant here.
            assert!(inst.relevant(h));
        }
    }

    #[test]
    fn irrelevant_hypothesis() {
        // Add a hypothesis that no manifestation needs.
        let inst = instance_from_clauses(
            &["a", "b", "m", "junk"],
            &[(&["a"], "m"), (&["b"], "m")],
            &["a", "b", "junk"],
            &["m"],
        );
        let junk = inst.schema.attr("junk").unwrap();
        assert!(!inst.relevant(junk));
        let a = inst.schema.attr("a").unwrap();
        let b = inst.schema.attr("b").unwrap();
        assert!(inst.relevant(a));
        assert!(inst.relevant(b));
    }

    #[test]
    fn unexplainable_manifestations() {
        let inst = instance_from_clauses(
            &["a", "m", "unreachable"],
            &[(&["a"], "m")],
            &["a"],
            &["unreachable"],
        );
        let a = inst.schema.attr("a").unwrap();
        assert!(!inst.relevant(a));
        assert!(inst.minimal_explanations().is_empty());
    }

    #[test]
    fn relevance_on_random_instances_matches_bruteforce() {
        use mdtw_schema::{random_schema, seeded_rng};
        let mut rng = seeded_rng(31);
        for i in 0..20 {
            let schema = random_schema(&mut rng, 6, 4, 2);
            let attrs: Vec<AttrId> = schema.attrs().collect();
            let inst = AbductionInstance {
                schema,
                hypotheses: attrs[..3].to_vec(),
                manifestations: attrs[3..5].to_vec(),
            };
            for &h in &inst.hypotheses {
                assert_eq!(
                    inst.relevant(h),
                    inst.relevant_bruteforce(h),
                    "instance {i}, hypothesis {h:?}"
                );
            }
        }
    }
}
