//! The 3-Colorability program of Figure 5 (paper §5.1).
//!
//! The datalog program's `solve(s, R, G, B)` facts are materialized as a
//! per-node dynamic-programming table: a fact holds iff the bag can be
//! partitioned into color classes `R, G, B` that extend to a proper
//! 3-coloring of all vertices seen in the subtree below `s` (Property A).
//! Because `R, G, B` are subsets of the bag, each fact is encoded in two
//! bag-local bitmasks (`r`, `g`; `b` is the complement) — this is exactly
//! the "succinct representation of constantly many monadic predicates
//! solve⟨r1,r2,r3⟩(s)" argument from the proof of Theorem 5.1.
//!
//! Beyond the paper's decision procedure, [`ThreeColSolver::witness`]
//! extracts an explicit coloring by replaying the table top-down.

use mdtw_decomp::{NiceKind, NiceTd, NodeId};
use mdtw_graph::Graph;
use mdtw_structure::fx::FxHashSet;
use mdtw_structure::ElemId;

/// A `solve(s, R, G, B)` fact: bitmasks over the *sorted bag positions*
/// of node `s`. Positions not in `r` or `g` are in `B`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColorState {
    /// Bag positions colored "red".
    pub r: u64,
    /// Bag positions colored "green".
    pub g: u64,
}

impl ColorState {
    #[inline]
    fn color_of(&self, pos: usize) -> u8 {
        if self.r >> pos & 1 == 1 {
            0
        } else if self.g >> pos & 1 == 1 {
            1
        } else {
            2
        }
    }
}

/// The per-node `solve` tables for a graph and a nice tree decomposition.
#[derive(Debug)]
pub struct ThreeColSolver<'a> {
    graph: &'a Graph,
    td: &'a NiceTd,
    tables: Vec<FxHashSet<ColorState>>,
    /// Total number of `solve` facts (for the state-count ablations).
    pub fact_count: usize,
}

impl<'a> ThreeColSolver<'a> {
    /// Runs the bottom-up computation of Figure 5. The decomposition must
    /// be over the graph's vertex ids (element `i` = vertex `i`), as
    /// produced by `mdtw_graph::partial_k_tree` or by decomposing
    /// `mdtw_graph::encode_graph`.
    pub fn run(graph: &'a Graph, td: &'a NiceTd) -> Self {
        let mut solver = Self {
            graph,
            td,
            tables: vec![FxHashSet::default(); td.len()],
            fact_count: 0,
        };
        for node in td.post_order() {
            let table = solver.compute_node(node);
            solver.fact_count += table.len();
            solver.tables[node.index()] = table;
        }
        solver
    }

    /// The `success` fact of Figure 5: some `solve(root, R, G, B)` exists.
    pub fn is_colorable(&self) -> bool {
        !self.tables[self.td.root().index()].is_empty()
    }

    /// The table at `node` (exposed for the enumeration/ablation benches).
    pub fn table(&self, node: NodeId) -> &FxHashSet<ColorState> {
        &self.tables[node.index()]
    }

    /// `allowed(s, X)` of Figure 5: no two adjacent bag vertices in `mask`.
    fn allowed(&self, bag: &[ElemId], mask: u64) -> bool {
        let mut bits = mask;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let mut rest = bits;
            while rest != 0 {
                let j = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                if self.graph.has_edge(bag[i].0, bag[j].0) {
                    return false;
                }
            }
        }
        true
    }

    fn compute_node(&self, node: NodeId) -> FxHashSet<ColorState> {
        let bag = self.td.bag(node);
        let mut out = FxHashSet::default();
        match self.td.kind(node) {
            NiceKind::Leaf => {
                // partition(s, R, G, B) with allowed(R), allowed(G), allowed(B).
                let n = bag.len();
                debug_assert!(n <= 63, "bag exceeds bitmask width");
                for r in 0u64..(1 << n) {
                    if !self.allowed(bag, r) {
                        continue;
                    }
                    let rest = !r & ((1 << n) - 1);
                    // Enumerate g ⊆ rest via subset iteration.
                    let mut gmask = rest;
                    loop {
                        if self.allowed(bag, gmask) {
                            let b = rest & !gmask;
                            if self.allowed(bag, b) {
                                out.insert(ColorState { r, g: gmask });
                            }
                        }
                        if gmask == 0 {
                            break;
                        }
                        gmask = (gmask - 1) & rest;
                    }
                }
            }
            NiceKind::Introduce(v) => {
                let child = self.td.node(node).children[0];
                let child_bag = self.td.bag(child);
                let vpos = bag.binary_search(&v).expect("introduced element in bag");
                // Bag positions below vpos keep their index; those at or
                // above shift by one relative to the child bag.
                let lift = |mask: u64| -> u64 {
                    let low = mask & ((1u64 << vpos) - 1);
                    let high = (mask >> vpos) << (vpos + 1);
                    low | high
                };
                let _ = child_bag;
                for state in &self.tables[child.index()] {
                    let base = ColorState {
                        r: lift(state.r),
                        g: lift(state.g),
                    };
                    for color in 0..3u8 {
                        let cand = match color {
                            0 => ColorState {
                                r: base.r | 1 << vpos,
                                g: base.g,
                            },
                            1 => ColorState {
                                r: base.r,
                                g: base.g | 1 << vpos,
                            },
                            _ => base,
                        };
                        // Only the new vertex's class needs re-checking.
                        let class = match color {
                            0 => cand.r,
                            1 => cand.g,
                            _ => !(cand.r | cand.g) & ((1u64 << bag.len()) - 1),
                        };
                        if self.allowed_with(bag, class, vpos) {
                            out.insert(cand);
                        }
                    }
                }
            }
            NiceKind::Forget(v) => {
                let child = self.td.node(node).children[0];
                let child_bag = self.td.bag(child);
                let vpos = child_bag
                    .binary_search(&v)
                    .expect("forgotten element in child bag");
                let drop = |mask: u64| -> u64 {
                    let low = mask & ((1u64 << vpos) - 1);
                    let high = (mask >> (vpos + 1)) << vpos;
                    low | high
                };
                for state in &self.tables[child.index()] {
                    out.insert(ColorState {
                        r: drop(state.r),
                        g: drop(state.g),
                    });
                }
            }
            NiceKind::Branch => {
                let children = &self.td.node(node).children;
                let (c1, c2) = (children[0], children[1]);
                let (small, large) =
                    if self.tables[c1.index()].len() <= self.tables[c2.index()].len() {
                        (c1, c2)
                    } else {
                        (c2, c1)
                    };
                for state in &self.tables[small.index()] {
                    if self.tables[large.index()].contains(state) {
                        out.insert(*state);
                    }
                }
            }
        }
        out
    }

    /// Checks that vertex at `vpos` has no same-class neighbour inside
    /// `class` (cheaper than a full `allowed` re-check).
    fn allowed_with(&self, bag: &[ElemId], class: u64, vpos: usize) -> bool {
        if class >> vpos & 1 == 0 {
            return true;
        }
        let mut bits = class & !(1u64 << vpos);
        while bits != 0 {
            let j = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if self.graph.has_edge(bag[vpos].0, bag[j].0) {
                return false;
            }
        }
        true
    }

    /// Extracts a proper 3-coloring by replaying the tables top-down
    /// (an extension over the paper's decision procedure).
    pub fn witness(&self) -> Option<Vec<u8>> {
        let root = self.td.root();
        let root_state = *self.tables[root.index()].iter().next()?;
        let mut colors = vec![u8::MAX; self.graph.len()];
        let mut stack = vec![(root, root_state)];
        while let Some((node, state)) = stack.pop() {
            self.assign(node, state, &mut colors, &mut stack);
        }
        // Vertices never covered by a bag (absent from the decomposition)
        // are isolated w.r.t. it; color them 0.
        for c in &mut colors {
            if *c == u8::MAX {
                *c = 0;
            }
        }
        debug_assert!(mdtw_graph::is_proper_coloring(self.graph, &colors, 3));
        Some(colors)
    }

    /// Records the bag colors of `state` at `node` and pushes the child
    /// states to replay next.
    fn assign(
        &self,
        node: NodeId,
        state: ColorState,
        colors: &mut [u8],
        stack: &mut Vec<(NodeId, ColorState)>,
    ) {
        let bag = self.td.bag(node);
        for (pos, &v) in bag.iter().enumerate() {
            colors[v.index()] = state.color_of(pos);
        }
        match self.td.kind(node) {
            NiceKind::Leaf => {}
            NiceKind::Introduce(v) => {
                let child = self.td.node(node).children[0];
                let vpos = bag.binary_search(&v).expect("in bag");
                let drop = |mask: u64| -> u64 {
                    let low = mask & ((1u64 << vpos) - 1);
                    let high = (mask >> (vpos + 1)) << vpos;
                    low | high
                };
                let child_state = ColorState {
                    r: drop(state.r),
                    g: drop(state.g),
                };
                debug_assert!(self.tables[child.index()].contains(&child_state));
                stack.push((child, child_state));
            }
            NiceKind::Forget(v) => {
                let child = self.td.node(node).children[0];
                let child_bag = self.td.bag(child);
                let vpos = child_bag.binary_search(&v).expect("in child bag");
                let lift = |mask: u64| -> u64 {
                    let low = mask & ((1u64 << vpos) - 1);
                    let high = (mask >> vpos) << (vpos + 1);
                    low | high
                };
                let base = ColorState {
                    r: lift(state.r),
                    g: lift(state.g),
                };
                // Find the color the table proves extendable for v.
                let child_state = (0..3u8)
                    .map(|color| match color {
                        0 => ColorState {
                            r: base.r | 1 << vpos,
                            g: base.g,
                        },
                        1 => ColorState {
                            r: base.r,
                            g: base.g | 1 << vpos,
                        },
                        _ => base,
                    })
                    .find(|cand| self.tables[child.index()].contains(cand))
                    .expect("table invariant: some extension exists");
                stack.push((child, child_state));
            }
            NiceKind::Branch => {
                for &child in &self.td.node(node).children {
                    debug_assert!(self.tables[child.index()].contains(&state));
                    stack.push((child, state));
                }
            }
        }
    }
}

/// End-to-end 3-colorability: encodes the graph, computes a min-fill tree
/// decomposition, converts to the §5 nice normal form and runs Figure 5.
pub fn is_three_colorable_fpt(graph: &Graph) -> bool {
    let (solver_result, _) = three_coloring_fpt(graph);
    solver_result
}

/// End-to-end decision plus witness extraction.
pub fn three_coloring_fpt(graph: &Graph) -> (bool, Option<Vec<u8>>) {
    if graph.is_empty() {
        return (true, Some(Vec::new()));
    }
    let structure = mdtw_graph::encode_graph(graph);
    let td = mdtw_decomp::decompose(&structure, mdtw_decomp::Heuristic::MinFill);
    let nice = NiceTd::from_td(&td, mdtw_decomp::NiceOptions::default());
    let solver = ThreeColSolver::run(graph, &nice);
    let ok = solver.is_colorable();
    let witness = if ok { solver.witness() } else { None };
    (ok, witness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdtw_graph::{
        complete, cycle, grid, is_proper_coloring, is_three_colorable_exact, partial_k_tree, path,
        petersen, wheel,
    };
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn classic_yes_instances() {
        for g in [
            path(6),
            cycle(5),
            cycle(6),
            grid(3, 5),
            petersen(),
            wheel(6),
        ] {
            assert!(is_three_colorable_fpt(&g), "{g}");
        }
    }

    #[test]
    fn classic_no_instances() {
        for g in [complete(4), wheel(5), wheel(7), complete(5)] {
            assert!(!is_three_colorable_fpt(&g), "{g}");
        }
    }

    #[test]
    fn witness_is_proper_when_colorable() {
        let (ok, witness) = three_coloring_fpt(&petersen());
        assert!(ok);
        let colors = witness.unwrap();
        assert!(is_proper_coloring(&petersen(), &colors, 3));
    }

    #[test]
    fn agrees_with_backtracking_on_random_partial_k_trees() {
        let mut rng = SmallRng::seed_from_u64(2024);
        for i in 0..30 {
            let k = 2 + (i % 3);
            let (g, td) = partial_k_tree(&mut rng, 12 + i, k, 0.8);
            let nice = NiceTd::from_td(&td, mdtw_decomp::NiceOptions::default());
            let solver = ThreeColSolver::run(&g, &nice);
            assert_eq!(
                solver.is_colorable(),
                is_three_colorable_exact(&g),
                "instance {i}"
            );
            if solver.is_colorable() {
                let colors = solver.witness().unwrap();
                assert!(is_proper_coloring(&g, &colors, 3));
            }
        }
    }

    #[test]
    fn generated_decomposition_path_matches_heuristic_path() {
        let mut rng = SmallRng::seed_from_u64(7);
        let (g, td) = partial_k_tree(&mut rng, 18, 3, 0.6);
        let nice = NiceTd::from_td(&td, mdtw_decomp::NiceOptions::default());
        let via_given = ThreeColSolver::run(&g, &nice).is_colorable();
        let via_heuristic = is_three_colorable_fpt(&g);
        assert_eq!(via_given, via_heuristic);
    }

    #[test]
    fn empty_and_tiny_graphs() {
        assert!(is_three_colorable_fpt(&Graph::new(0)));
        assert!(is_three_colorable_fpt(&Graph::new(1)));
        assert!(is_three_colorable_fpt(&complete(3)));
    }
}
