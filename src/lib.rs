//! # mdtw
//!
//! Facade crate for the *Monadic Datalog over Finite Structures with
//! Bounded Treewidth* reproduction (Gottlob, Pichler & Wei, PODS 2007).
//!
//! Re-exports every layer of the pipeline so downstream users (and the
//! workspace examples) can depend on a single crate:
//!
//! * [`structure`] — finite τ-structures (§2.2);
//! * [`graph`] — graphs, generators and the τ = {e} encoding (§5.1);
//! * [`schema`] — relational schemas, FDs and the τ = {fd, att, lh, rh}
//!   encoding (§2.1–2.2);
//! * [`decomp`] — tree decompositions and their normal forms (§2.2, §5);
//! * [`datalog`] — the stratified / quasi-guarded datalog engine (§2.4, §4),
//!   fronted by the [`Evaluator`](mdtw_datalog::Evaluator) session API,
//!   with the static-analysis / lint framework of
//!   [`datalog::analysis`] (spanned `MD0xx`
//!   diagnostics, dead-rule pruning, the `mdtw-lint` binary);
//! * [`mso`] — MSO formulas, types, and the Theorem 4.5 compilation (§3–4);
//! * [`fta`] — the classical MSO-to-tree-automata baseline;
//! * [`core`] — the §5 solvers: 3-Colorability (Figure 5), PRIMALITY
//!   (Figure 6), enumeration (§5.3) and the §7 abduction bridge.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mdtw_core as core;
pub use mdtw_datalog as datalog;
pub use mdtw_decomp as decomp;
pub use mdtw_fta as fta;
pub use mdtw_graph as graph;
pub use mdtw_mso as mso;
pub use mdtw_schema as schema;
pub use mdtw_structure as structure;

/// The most common end-to-end entry points, re-exported flat.
///
/// Datalog evaluation goes through the [`Evaluator`](mdtw_datalog::Evaluator)
/// session API — construct once per program, evaluate per structure. The
/// deprecated one-shot `eval_*` free functions are intentionally *not*
/// re-exported here; they remain reachable via [`crate::datalog`].
pub mod prelude {
    pub use mdtw_core::{
        enumerate_primes, is_prime_fpt, is_prime_fpt_with_td, prime_attributes_fpt,
        PrimalityContext, ThreeColSolver,
    };
    pub use mdtw_datalog::{
        analyze, parse_program, stratify, AnalysisOptions, CancelToken, Diagnostic, Engine,
        EvalError, EvalLimits, EvalOptions, EvalProfile, EvalResult, Evaluator, Explanation,
        LimitKind, LintCode, MaterializedView, PlanCache, ProfileDetail, ProgramReport, Severity,
        Span, Stratification, StratificationError, Update,
    };
    pub use mdtw_decomp::{decompose, Heuristic, NiceOptions, NiceTd, TreeDecomposition, TupleTd};
    pub use mdtw_graph::{encode_graph, Graph};
    pub use mdtw_schema::{encode_schema, Schema};
    pub use mdtw_structure::{Domain, ElemId, Signature, Structure};
}
