//! Quickstart: 3-Colorability via monadic datalog over a tree
//! decomposition (paper §5.1, Figure 5).
//!
//! ```text
//! cargo run -p mdtw-examples --bin quickstart
//! ```

use mdtw_core::{three_coloring_fpt, ThreeColSolver};
use mdtw_decomp::{NiceOptions, NiceTd};
use mdtw_graph::{partial_k_tree, petersen, wheel};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    // 1. A classic: the Petersen graph is 3-chromatic.
    let g = petersen();
    let (colorable, witness) = three_coloring_fpt(&g);
    println!("Petersen graph: 3-colorable = {colorable}");
    println!("  witness coloring: {:?}", witness.expect("colorable"));

    // 2. An odd wheel needs four colors.
    let w5 = wheel(5);
    let (colorable, _) = three_coloring_fpt(&w5);
    println!("Wheel W5: 3-colorable = {colorable}");

    // 3. A larger bounded-treewidth instance, decomposition-first: the
    //    generator returns the width-3 tree decomposition alongside the
    //    graph, so no heuristic decomposition step is needed.
    let mut rng = SmallRng::seed_from_u64(7);
    let (big, td) = partial_k_tree(&mut rng, 2_000, 3, 0.85);
    let nice = NiceTd::from_td(&td, NiceOptions::default());
    println!(
        "random partial 3-tree: {} vertices, {} edges, {} decomposition nodes",
        big.len(),
        big.edge_count(),
        nice.len()
    );
    let start = std::time::Instant::now();
    let solver = ThreeColSolver::run(&big, &nice);
    println!(
        "  3-colorable = {} ({} solve facts, {:.1} ms — linear in the input)",
        solver.is_colorable(),
        solver.fact_count,
        start.elapsed().as_secs_f64() * 1e3
    );
    if let Some(colors) = solver.witness() {
        println!("  extracted witness uses colors: {:?}", {
            let mut used: Vec<u8> = colors.clone();
            used.sort_unstable();
            used.dedup();
            used
        });
    }
}
