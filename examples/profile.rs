//! Hot-rule diagnosis with the evaluation profiler: find out *which
//! rule*, *which literal*, and *which stratum* burn the work.
//!
//! ```text
//! cargo run --example profile
//! ```
//!
//! Builds the 3-stratum reachability/negation workload from the bench
//! suite, renders its compiled join plans with [`Evaluator::explain`],
//! then evaluates it at [`ProfileDetail::Literals`] and walks the
//! collected [`EvalProfile`]: the per-stratum timeline, the hottest
//! rules, and the observed per-literal selectivities — the feedstock a
//! cost-based re-planner needs. Finally it trips a fuel budget to show
//! that a partial profile still pinpoints where the work went.

use mdtw::prelude::*;
use std::sync::Arc;

/// The 3-stratum negation chain: reachability from a mid-chain source,
/// its complement, and the nodes settled by double negation.
const PROGRAM: &str = "reach(X) :- first(X).\nreach(Y) :- reach(X), e(X, Y).\n\
     unreach(X) :- node(X), !reach(X).\n\
     settled(X) :- node(X), !unreach(X), !first(X).";

/// A directed chain of `n` nodes with `first` marking the middle.
fn chain(n: u32) -> Structure {
    let sig = Arc::new(Signature::from_pairs([("e", 2), ("node", 1), ("first", 1)]));
    let mut s = Structure::new(sig, Domain::anonymous(n as usize));
    let e = s.signature().lookup("e").unwrap();
    let node = s.signature().lookup("node").unwrap();
    let first = s.signature().lookup("first").unwrap();
    for i in 0..n {
        s.insert(node, &[ElemId(i)]);
    }
    for i in 0..n - 1 {
        s.insert(e, &[ElemId(i), ElemId(i + 1)]);
    }
    s.insert(first, &[ElemId(n / 2)]);
    s
}

fn main() {
    let s = chain(512);
    let program = mdtw::datalog::parse_program(PROGRAM, &s).unwrap();

    // 1. What will run: the compiled join plans, per stratum.
    let session = Evaluator::new(program.clone()).unwrap();
    println!("== explain ==\n{}", session.explain(&s).render_text());

    // 2. What actually ran: a profiled evaluation at full detail.
    let mut session = Evaluator::with_options(
        program.clone(),
        EvalOptions::new().profile(ProfileDetail::Literals),
    )
    .unwrap();
    let result = session.evaluate(&s).unwrap();
    let profile = result.profile.expect("profiling enabled");

    println!("== per-stratum timeline ==");
    for st in &profile.strata {
        println!(
            "stratum {}: {} rounds, {} facts, {:.1} us",
            st.index,
            st.rounds,
            st.facts,
            st.nanos as f64 / 1e3
        );
    }

    // The hot-rule diagnosis: rules ranked by time spent.
    println!("== hottest rules ==");
    for rp in profile.hottest_rules().iter().take(3) {
        println!(
            "rule {} ({}): {} firings, {} tuples considered, {} probes, {:.1} us",
            rp.rule,
            rp.head,
            rp.firings,
            rp.tuples_considered,
            rp.index_probes,
            rp.nanos as f64 / 1e3
        );
        // Observed selectivities, literal by literal: `tuples_in`
        // candidates enumerated at the join position, `tuples_out`
        // surviving unification — a selective early literal is what a
        // cost-based join order wants to schedule first.
        for lit in &rp.literals {
            let pred = &program.rules[rp.rule].body[lit.literal].atom.pred;
            let name = match *pred {
                mdtw::datalog::PredRef::Edb(p) => s.signature().name(p).to_owned(),
                mdtw::datalog::PredRef::Idb(i) => program.idb_names[i.0 as usize].clone(),
            };
            let sel = lit.tuples_out as f64 / (lit.tuples_in as f64).max(1.0);
            println!(
                "    literal {} ({name}): {} -> {} (selectivity {sel:.2})",
                lit.literal, lit.tuples_in, lit.tuples_out,
            );
        }
    }

    // 3. A tripped budget still tells you where the fuel went.
    let mut governed = Evaluator::with_options(
        program,
        EvalOptions::new()
            .profile(ProfileDetail::Rules)
            .limits(EvalLimits::new().fuel(200)),
    )
    .unwrap();
    match governed.evaluate(&s) {
        Err(EvalError::LimitExceeded {
            kind,
            stats,
            partial,
        }) => {
            println!("== tripped run ==");
            println!("budget tripped on {kind:?} after {} facts", stats.facts);
            let profile = partial
                .and_then(|p| p.profile)
                .expect("trip keeps the profile");
            println!(
                "tripped in stratum {:?}; partial timeline has {} strata",
                profile.trip_stratum,
                profile.strata.len()
            );
        }
        other => panic!("a 200-unit fuel budget must trip, got {other:?}"),
    }
}
