//! The semantic optimizer end to end: containment-based rule
//! minimization, boundedness detection with recursion elimination, and
//! the magic-set demand transformation — first surfaced as `MD0xx`
//! diagnostics by the semantic analysis tier, then applied through
//! [`EvalOptions`] with a store-identical guarantee on the declared
//! outputs.
//!
//! ```text
//! cargo run --example optimize
//! ```
//!
//! The same pipeline backs `mdtw-lint --optimize`:
//! `cargo run -p mdtw-datalog --bin mdtw-lint -- --optimize FILE.dl`.

use mdtw::datalog::{optimize, recursive_idb_scc_count};
use mdtw::prelude::*;
use std::sync::Arc;

fn main() {
    let sig = Arc::new(Signature::from_pairs([("e", 2), ("source", 1)]));
    let n = 400;
    let dom = Domain::anonymous(n);
    let mut s = Structure::new(sig, dom);
    let e = s.signature().lookup("e").unwrap();
    let source = s.signature().lookup("source").unwrap();
    for i in 0..n as u32 - 1 {
        s.insert(e, &[ElemId(i), ElemId(i + 1)]);
    }
    s.insert(source, &[ElemId(0)]);

    // Three semantic flaws, none of them visible to purely syntactic
    // lints: rule 1 is a homomorphic instance of rule 0 (map Y to X);
    // the symmetric closure `q` is a *bounded* recursion (two unfolding
    // stages reach the fixpoint); and the point query `answer` only ever
    // demands `path` facts reachable from `source`.
    let text = "\
         p(X) :- e(X, Y).\n\
         p(X) :- e(X, X).\n\
         q(X, Y) :- e(X, Y).\n\
         q(X, Y) :- q(Y, X).\n\
         path(X, Y) :- e(X, Y).\n\
         path(X, Z) :- path(X, Y), e(Y, Z).\n\
         answer(Y) :- source(X), path(X, Y), p(X).\n\
         answer(Y) :- source(X), q(X, Y).";

    // 1. The semantic analysis tier names each optimization opportunity
    //    as a spanned diagnostic (MD017 / MD023 / MD040).
    let program = parse_program(text, &s).unwrap();
    let report = analyze(
        &program,
        &AnalysisOptions::new()
            .edb_signature(Arc::clone(s.signature()))
            .outputs(["answer"])
            .semantic(true),
    );
    for d in &report.diagnostics {
        println!("{}\n", d.render(Some(text), "query.dl"));
    }
    let semantic = report.semantic.as_ref().expect("semantic tier ran");
    assert_eq!(semantic.redundant_rules.iter().filter(|&&r| r).count(), 1);
    assert_eq!(semantic.bounded_sccs.len(), 1);
    assert!(semantic.magic.as_ref().unwrap().applicable);

    // 2. `optimize` applies all three transforms in place and reports
    //    what each did. The bounded SCC is gone: the program is now
    //    nonrecursive except for the demanded `path` closure.
    let mut optimized = parse_program(text, &s).unwrap();
    let answer = optimized.idb("answer").unwrap();
    let summary = optimize(&mut optimized, &[answer]);
    println!(
        "optimize: {} rule(s) removed, {} literal(s) condensed, \
         {} bounded SCC(s) unfolded, magic: {} demand rule(s)",
        summary.removed_rules,
        summary.condensed_literals,
        summary.bounded_sccs,
        summary.magic_rules
    );
    assert_eq!(summary.removed_rules, 1);
    assert_eq!(summary.bounded_sccs, 1);
    assert!(summary.magic_applied);

    // 3. The same transforms through the session API, with the
    //    store-identical guarantee on the declared output: the demand
    //    transformation derives far fewer facts for the same answer.
    let mut plain = Evaluator::with_options(
        parse_program(text, &s).unwrap(),
        EvalOptions::new().outputs(["answer"]),
    )
    .unwrap();
    let mut magic = Evaluator::with_options(
        parse_program(text, &s).unwrap(),
        EvalOptions::new()
            .outputs(["answer"])
            .minimize(true)
            .eliminate_bounded_recursion(true)
            .magic_sets(true),
    )
    .unwrap();
    assert!(magic.transforms().magic_applied);
    assert_eq!(recursive_idb_scc_count(magic.program()), 1, "only `path`");

    let a = plain.evaluate(&s).unwrap();
    let b = magic.evaluate(&s).unwrap();
    let answer_plain = plain.program().idb("answer").unwrap();
    let answer_magic = magic.program().idb("answer").unwrap();
    assert_eq!(
        a.store.tuples(answer_plain),
        b.store.tuples(answer_magic),
        "the demand transformation preserves the output bit-for-bit"
    );
    println!(
        "evaluation: full {} facts / optimized {} facts for the same {}-tuple answer",
        a.stats.facts,
        b.stats.facts,
        a.store.tuples(answer_plain).len()
    );
    assert!(b.stats.facts * 2 < a.stats.facts);
}
