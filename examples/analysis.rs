//! The static-analysis / lint framework end to end: spanned `MD0xx`
//! diagnostics over a datalog source, and dead-rule pruning inside an
//! [`Evaluator`] session.
//!
//! ```text
//! cargo run --example analysis
//! ```
//!
//! The same pass backs the `mdtw-lint` binary:
//! `cargo run -p mdtw-datalog --bin mdtw-lint -- examples/dl/*.dl`.

use mdtw::datalog::lint::lint_source;
use mdtw::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. Lint a flawed source file, exactly as `mdtw-lint` would: the
    //    `%! edb` / `%! output` pragmas declare the extensional schema and
    //    the output predicates, and each finding carries a byte + line/col
    //    span pointing back into the source.
    let source = "\
% A deliberately flawed program.
%! edb e/2
%! edb node/1
%! output odd

odd(X) :- e(Y, X), even(Y).
even(X) :- node(X), !odd(X).
orphan(X) :- node(X), e(X, Unused).
";
    let outcome = lint_source(source).expect("pragmas are well-formed");
    let report = outcome.report.expect("parses leniently");
    println!(
        "lint: {} errors, {} warnings over {} diagnostics\n",
        report.error_count(),
        report.warning_count(),
        report.diagnostics.len()
    );
    for d in &report.diagnostics {
        println!("{}\n", d.render(Some(source), "flawed.dl"));
    }
    // The negative cycle (MD003) is fatal: this program has no stratified
    // semantics, and `Evaluator::new` would refuse it.
    assert!(report.has_errors());
    assert_eq!(report.strata, None);

    // 2. Dead-rule pruning: declare the outputs you care about and the
    //    session drops every rule that cannot influence them — with a
    //    property-tested guarantee that the derived store on the relevant
    //    fragment is bit-identical.
    let sig = Arc::new(Signature::from_pairs([("e", 2), ("first", 1)]));
    let n = 500;
    let dom = Domain::anonymous(n);
    let mut s = Structure::new(sig, dom);
    let e = s.signature().lookup("e").unwrap();
    let first = s.signature().lookup("first").unwrap();
    for i in 0..n as u32 - 1 {
        s.insert(e, &[ElemId(i), ElemId(i + 1)]);
    }
    s.insert(first, &[ElemId(0)]);

    let text = "\
         reach(X) :- first(X).\n\
         reach(Y) :- reach(X), e(X, Y).\n\
         scratch(Y) :- reach(X), e(Y, X).\n\
         scratch2(X) :- scratch(X), e(X, Y), first(Y).";
    let full = parse_program(text, &s).unwrap();
    let pruned = parse_program(text, &s).unwrap();

    let mut plain = Evaluator::new(full).unwrap();
    let mut session = Evaluator::with_options(
        pruned,
        EvalOptions::new().outputs(["reach"]).prune_dead_rules(true),
    )
    .unwrap();
    println!(
        "pruning: {} of 4 rules dropped ({} kept)",
        session.pruned_rule_count(),
        session.program().rules.len()
    );
    assert_eq!(session.pruned_rule_count(), 2);

    let a = plain.evaluate(&s).unwrap();
    let b = session.evaluate(&s).unwrap();
    let reach_full = plain.program().idb("reach").unwrap();
    let reach_pruned = session.program().idb("reach").unwrap();
    assert_eq!(
        a.store.tuples(reach_full),
        b.store.tuples(reach_pruned),
        "pruning preserves the output relation bit-for-bit"
    );
    println!(
        "  full: {} facts / {} firings; pruned: {} facts / {} firings",
        a.stats.facts, a.stats.firings, b.stats.facts, b.stats.firings
    );
    assert!(b.stats.firings < a.stats.firings);

    // 3. The session's own report, post-pruning: nothing left to warn
    //    about, and the recursion is classified.
    let report = session.analyze();
    println!(
        "  post-prune analysis: {} warnings, recursion {}",
        report.warning_count(),
        report.recursion
    );
    assert_eq!(report.warning_count(), 0);
}
