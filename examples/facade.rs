//! The whole pipeline through the `mdtw` facade crate alone: decompose,
//! solve 3-Colorability (Figure 5), decide PRIMALITY (Figure 6).

use mdtw::prelude::*;

fn main() {
    // Graph side: Petersen is 3-colorable, K4 needs a proper run to say no.
    let g = mdtw::graph::petersen();
    let s = encode_graph(&g);
    let td = decompose(&s, Heuristic::MinFill);
    let nice = NiceTd::from_td(&td, NiceOptions::default());
    let solver = ThreeColSolver::run(&g, &nice);
    println!(
        "petersen: width {} decomposition, 3-colorable = {}",
        td.width(),
        solver.is_colorable()
    );

    // Schema side: the paper's running example (Example 2.1/2.2).
    let schema = mdtw::schema::example_2_1();
    let primes = prime_attributes_fpt(&schema);
    let names: Vec<&str> = primes.iter().map(|&a| schema.attr_name(a)).collect();
    println!("example 2.1 prime attributes: {names:?}");
}
