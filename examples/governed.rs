//! Resource-governed evaluation end to end: budgets, deadlines,
//! cancellation, and graceful degradation.
//!
//! ```text
//! cargo run --example governed
//! ```
//!
//! Builds a transitive-closure workload whose full fixpoint is Θ(n²)
//! facts, then evaluates it under successively tighter [`EvalLimits`]:
//! a round cap, a fact cap, a fuel budget, and a cancelled token. Each
//! trip surfaces as a typed [`EvalError::LimitExceeded`] carrying the
//! work counters and a *partial* result — a sound subset of the full
//! least fixpoint — which the example verifies tuple by tuple.

use mdtw::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// A directed chain 0 → 1 → … → n-1 with `first(0)` marked.
fn chain(n: u32) -> Structure {
    let sig = Arc::new(Signature::from_pairs([("e", 2), ("first", 1)]));
    let mut s = Structure::new(sig, Domain::anonymous(n as usize));
    let e = s.signature().lookup("e").unwrap();
    let first = s.signature().lookup("first").unwrap();
    s.insert(first, &[ElemId(0)]);
    for i in 0..n - 1 {
        s.insert(e, &[ElemId(i), ElemId(i + 1)]);
    }
    s
}

const TC: &str = "path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), e(Y, Z).";

/// Runs the program under `limits` and reports what happened: the full
/// result, or the trip kind plus how much of the fixpoint survived.
fn run(label: &str, s: &Structure, limits: EvalLimits, full: Option<&EvalResult>) {
    let program = mdtw::datalog::parse_program(TC, s).unwrap();
    let mut session =
        Evaluator::with_options(program.clone(), EvalOptions::new().limits(limits.clone()))
            .unwrap();
    match session.evaluate(s) {
        Ok(result) => println!(
            "{label:<18} completed: {} facts in {} rounds ({} fuel spent)",
            result.store.fact_count(),
            result.stats.rounds,
            limits.fuel_spent(),
        ),
        Err(EvalError::LimitExceeded {
            kind,
            stats,
            partial,
        }) => {
            let partial = partial.expect("fixpoint engines attach partial results");
            // Graceful degradation: every partial fact is truly derivable.
            if let Some(full) = full {
                let path = program.idb_names.iter().position(|n| n == "path").unwrap();
                let id = mdtw::datalog::IdbId(path as u32);
                for tuple in partial.store.tuples(id) {
                    assert!(full.store.holds(id, &tuple), "partial invented a fact");
                }
            }
            println!(
                "{label:<18} tripped on `{kind}` after {} rounds: kept {} of the full \
                 fixpoint's facts, all verified derivable",
                stats.rounds,
                partial.store.fact_count(),
            );
        }
        Err(other) => panic!("unexpected evaluation error: {other}"),
    }
}

fn main() {
    let s = chain(256);
    let program = mdtw::datalog::parse_program(TC, &s).unwrap();
    let full = Evaluator::new(program).unwrap().evaluate(&s).unwrap();
    println!(
        "chain(256) transitive closure: {} facts, ungoverned\n",
        full.store.fact_count()
    );

    run(
        "max_rounds(8)",
        &s,
        EvalLimits::new().max_rounds(8),
        Some(&full),
    );
    run(
        "max_facts(5000)",
        &s,
        EvalLimits::new().max_derived_facts(5000),
        Some(&full),
    );
    run(
        "fuel(20_000)",
        &s,
        EvalLimits::new().fuel(20_000),
        Some(&full),
    );
    run(
        "deadline(1h)",
        &s,
        EvalLimits::new().deadline(Duration::from_secs(3600)),
        Some(&full),
    );

    // Cooperative cancellation: cancel() from any clone of the token —
    // here before evaluation even starts, in real use from another
    // thread — stops the run at its next checkpoint.
    let token = CancelToken::new();
    token.cancel();
    run(
        "cancelled token",
        &s,
        EvalLimits::new().cancel_token(token),
        Some(&full),
    );

    // Clones of one EvalLimits share a meter: the spend is cumulative
    // across evaluations, so a session budget covers *all* the work it
    // spawns (the optimizer's nested containment probes included).
    let budget = EvalLimits::new().fuel(100_000);
    let program = mdtw::datalog::parse_program(TC, &s).unwrap();
    let mut session =
        Evaluator::with_options(program, EvalOptions::new().limits(budget.clone())).unwrap();
    let mut runs = 0usize;
    loop {
        match session.evaluate(&s) {
            Ok(_) => runs += 1,
            Err(EvalError::LimitExceeded { kind, .. }) => {
                println!(
                    "\nshared meter: {runs} full evaluations fit in a 100k-fuel budget \
                     before run {} tripped on `{kind}` ({} fuel spent)",
                    runs + 1,
                    budget.fuel_spent(),
                );
                break;
            }
            Err(other) => panic!("unexpected evaluation error: {other}"),
        }
    }
}
