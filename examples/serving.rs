//! A long-lived materialized view serving reads while the base data
//! churns: materialize once, then absorb insert/retract batches
//! incrementally under a per-update deadline budget.
//!
//! ```text
//! cargo run --example serving
//! ```
//!
//! Builds a delivery network (a chain of way-stations with a depot at
//! node 0), materializes reachability plus its negation-backed
//! complement, and runs a serve loop: each tick retracts one road
//! segment, inserts a detour, and answers queries from the maintained
//! fixpoint — inserts re-derive semi-naively, retracts run
//! delete-and-rederive (DRed), and nothing is re-evaluated from
//! scratch. Every update runs under a fresh deadline meter; a tripped
//! budget (simulated at the end with a cancelled token) falls back to a
//! sound full recomputation instead of serving a half-maintained view.

use mdtw::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Reachability from the depot, and the stops the network can no longer
/// serve — a second stratum negating the first, so updates must
/// propagate across a negation boundary.
const PROGRAM: &str = "reach(X) :- depot(X).\n\
                       reach(Y) :- reach(X), road(X, Y).\n\
                       cutoff(X) :- stop(X), !reach(X).";

/// A chain of `n` stops, 0 → 1 → … → n-1, with the depot at stop 0.
fn network(n: u32) -> Structure {
    let sig = Arc::new(Signature::from_pairs([
        ("road", 2),
        ("stop", 1),
        ("depot", 1),
    ]));
    let mut s = Structure::new(sig, Domain::anonymous(n as usize));
    let road = s.signature().lookup("road").unwrap();
    let stop = s.signature().lookup("stop").unwrap();
    let depot = s.signature().lookup("depot").unwrap();
    s.insert(depot, &[ElemId(0)]);
    for i in 0..n {
        s.insert(stop, &[ElemId(i)]);
    }
    for i in 0..n - 1 {
        s.insert(road, &[ElemId(i), ElemId(i + 1)]);
    }
    s
}

fn main() {
    let s = network(2000);
    let road = s.signature().lookup("road").unwrap();
    let program = mdtw::datalog::parse_program(PROGRAM, &s).unwrap();

    // Every `apply` gets a fresh meter from this budget (only the
    // cancel token is shared), so a serve loop bounds each maintenance
    // step without the budget aging across ticks.
    let token = CancelToken::new();
    let budget = EvalLimits::new()
        .deadline(Duration::from_millis(250))
        .cancel_token(token.clone());
    let mut view = Evaluator::with_options(program, EvalOptions::new().limits(budget))
        .unwrap()
        .materialize(&s)
        .unwrap();
    println!(
        "materialized: {} derived facts; reach(1999) = {}",
        view.store().fact_count(),
        view.holds("reach", &[ElemId(1999)]),
    );

    // The serve loop: each tick closes the road segment after a
    // maintenance site and opens a detour around the next stop. The
    // view absorbs each mixed batch incrementally and reads stay exact.
    for tick in 0u32..4 {
        let site = 400 * (tick + 1);
        let update = Update::new()
            .retract(road, &[ElemId(site), ElemId(site + 1)])
            .insert(road, &[ElemId(site), ElemId(site + 2)]);
        let profile = view.apply(&update);
        println!(
            "tick {tick}: closed {site}→{}, detour {site}→{}: -{} +{} derived facts \
             in {:.2} ms; cutoff({}) = {}",
            site + 1,
            site + 2,
            profile.deleted,
            profile.inserted,
            profile.total_nanos as f64 / 1e6,
            site + 1,
            view.holds("cutoff", &[ElemId(site + 1)]),
        );
    }

    // Reads are served from an exact fixpoint: cross-check the view
    // against a from-scratch evaluation of the current base.
    let base = view.base_structure();
    let mut oracle = Evaluator::new(view.program().clone()).unwrap();
    let fresh = oracle.evaluate(&base).unwrap();
    assert_eq!(view.store().fact_count(), fresh.store.fact_count());
    println!(
        "\nafter {} updates the view still matches a cold evaluation ({} facts)",
        view.updates_applied(),
        fresh.store.fact_count(),
    );

    // When a budget trips mid-maintenance the view never serves a
    // half-maintained state: it falls back to a full recomputation and
    // reports the trip on the update profile.
    token.cancel();
    let profile = view.apply(&Update::new().retract(road, &[ElemId(0), ElemId(1)]));
    assert_eq!(profile.fell_back, Some(LimitKind::Cancelled));
    assert!(!view.holds("reach", &[ElemId(1)]));
    println!(
        "cancelled mid-update: fell back on `{:?}`, view still exact — reach(1) = {}",
        profile.fell_back.unwrap(),
        view.holds("reach", &[ElemId(1)]),
    );
}
