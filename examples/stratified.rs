//! Stratified negation end to end: complement reachability and a
//! multi-stratum "defended node" query over generated digraphs.
//!
//! ```text
//! cargo run --example stratified
//! ```
//!
//! Both programs negate *derived* predicates, which the semipositive
//! engines reject: an [`Evaluator`] session stratifies the program once
//! at construction and evaluates the strata bottom-up, materializing each
//! one into the indexed relation layer so the next stratum reads it as an
//! ordinary extensional relation.

use mdtw_datalog::{parse_program, Evaluator, StratificationError};
use mdtw_structure::{Domain, ElemId, Signature, Structure};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A random digraph on `n` nodes with ~`n * density` edges, plus `node`
/// marks on every element and a single `first` source.
fn random_digraph(n: u32, density: f64, seed: u64) -> Structure {
    let sig = Arc::new(Signature::from_pairs([
        ("edge", 2),
        ("node", 1),
        ("first", 1),
    ]));
    let dom = Domain::anonymous(n as usize);
    let mut s = Structure::new(sig, dom);
    let edge = s.signature().lookup("edge").unwrap();
    let node = s.signature().lookup("node").unwrap();
    let first = s.signature().lookup("first").unwrap();
    for i in 0..n {
        s.insert(node, &[ElemId(i)]);
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..(f64::from(n) * density) as usize {
        let a = rng.random_range(0..n);
        let b = rng.random_range(0..n);
        if a != b {
            s.insert(edge, &[ElemId(a), ElemId(b)]);
        }
    }
    s.insert(first, &[ElemId(0)]);
    s
}

fn main() {
    // 1. Complement reachability: the nodes NOT reachable from the source.
    //    `unreachable` negates the recursively defined `reachable`, so the
    //    program has two strata.
    let s = random_digraph(2_000, 1.1, 42);
    let p = parse_program(
        "reachable(X) :- first(X).\n\
         reachable(Y) :- reachable(X), edge(X, Y).\n\
         unreachable(X) :- node(X), !reachable(X).",
        &s,
    )
    .expect("stratified program parses");
    // The session stratifies (and validates) once, here at construction.
    let mut session = Evaluator::new(p).expect("no negative cycle");
    let p = session.program();
    let strat = session.stratification();
    println!(
        "complement reachability: {} strata (reachable in {}, unreachable in {})",
        strat.stratum_count(),
        strat.stratum_of(p.idb("reachable").unwrap()),
        strat.stratum_of(p.idb("unreachable").unwrap()),
    );
    let (reachable, unreachable) = (p.idb("reachable").unwrap(), p.idb("unreachable").unwrap());
    let result = session.evaluate(&s).expect("stratifiable");
    let (store, stats) = (result.store, result.stats);
    let reached = store.unary(reachable).len();
    let unreached = store.unary(unreachable).len();
    println!(
        "  2000 nodes: {reached} reachable + {unreached} unreachable \
         ({} rounds, {} firings, {} negative checks)",
        stats.rounds, stats.firings, stats.negative_checks
    );
    assert_eq!(reached + unreached, 2_000, "negation complements exactly");

    // 2. Defended nodes, a negation chain across three strata:
    //    attacked   — nodes with at least one attacker (positive);
    //    unanswered — nodes attacked by an attacker nobody attacks
    //                 (negates stratum 0);
    //    defended   — nodes with no unanswered attack (negates stratum 1).
    let s = random_digraph(1_500, 0.9, 7);
    let p = parse_program(
        "attacked(X) :- edge(Y, X).\n\
         unanswered(X) :- edge(Y, X), not attacked(Y).\n\
         defended(X) :- node(X), \u{ac}unanswered(X).",
        &s,
    )
    .expect("stratified program parses");
    let mut session = Evaluator::new(p).expect("no negative cycle");
    println!(
        "defended nodes: {} strata over {} rules",
        session.stratification().stratum_count(),
        session.program().rules.len()
    );
    let result = session.evaluate(&s).expect("stratifiable");
    let (p, store, stats) = (session.program(), result.store, result.stats);
    println!(
        "  1500 nodes: {} attacked, {} with unanswered attacks, {} defended \
         ({} strata, {} negative checks)",
        store.unary(p.idb("attacked").unwrap()).len(),
        store.unary(p.idb("unanswered").unwrap()).len(),
        store.unary(p.idb("defended").unwrap()).len(),
        stats.strata,
        stats.negative_checks
    );

    // 3. And the guard rail: negation inside a recursive cycle has no
    //    stratified semantics — the classic win-move game program.
    let err = parse_program("win(X) :- edge(X, Y), !win(Y).", &s).unwrap_err();
    println!("win-move game rejected: {err}");
    assert!(matches!(
        stratify_of(&s),
        Err(StratificationError::NegativeCycle { .. })
    ));
}

/// Builds the unstratifiable win-move program by hand (the parser refuses
/// to construct it) so the example can show the precise error value.
fn stratify_of(s: &Structure) -> Result<mdtw_datalog::Stratification, StratificationError> {
    use mdtw_datalog::{Atom, Literal, PredRef, Program, Rule, Term, Var};
    let edge = s.signature().lookup("edge").unwrap();
    let mut p = Program::default();
    let win = p.intern_idb("win", 1).unwrap();
    p.rules.push(Rule {
        head: Atom {
            pred: PredRef::Idb(win),
            terms: vec![Term::Var(Var(0))],
        },
        body: vec![
            Literal {
                atom: Atom {
                    pred: PredRef::Edb(edge),
                    terms: vec![Term::Var(Var(0)), Term::Var(Var(1))],
                },
                positive: true,
            },
            Literal {
                atom: Atom {
                    pred: PredRef::Idb(win),
                    terms: vec![Term::Var(Var(1))],
                },
                positive: false,
            },
        ],
        var_count: 2,
        var_names: vec!["X".into(), "Y".into()],
    });
    mdtw_datalog::stratify(&p)
}
