//! PRIMALITY of relational schemas (paper §2.1, §5.2, §5.3) on the
//! running example 2.1 and on generated workloads.
//!
//! ```text
//! cargo run -p mdtw-examples --bin primality
//! ```

use mdtw_core::{enumerate_primes, is_prime_fpt, prime_attributes_fpt, PrimalityContext};
use mdtw_decomp::exact_treewidth;
use mdtw_decomp::PrimalGraph;
use mdtw_schema::{block_tree_instance, example_2_1, example_2_2};

fn main() {
    // The running example: R = abcdeg, F = {ab→c, c→b, cd→e, de→g, g→e}.
    let schema = example_2_1();
    println!("schema (Example 2.1):\n{schema}");

    // Classical baseline: enumerate keys (Lucchesi–Osborn).
    let keys = schema.keys();
    let rendered: Vec<String> = keys.iter().map(|k| schema.render_set(k)).collect();
    println!("keys: {rendered:?}  (paper: abd and acd)");

    // The τ-structure encoding and its treewidth (Example 2.2: tw = 2).
    let (enc, td) = example_2_2();
    let g = PrimalGraph::of(&enc.structure);
    println!(
        "encoded as τ-structure: |A| = {}, treewidth = {} (decomposition width {})",
        enc.structure.domain().len(),
        exact_treewidth(&g),
        td.width()
    );

    // Decision problem (Figure 6) for every attribute.
    print!("prime attributes via Figure 6 decisions: ");
    for a in schema.attrs() {
        if is_prime_fpt(&schema, a) {
            print!("{}", schema.attr_name(a));
        }
    }
    println!("  (paper: abcd)");

    // Enumeration problem (§5.3): one bottom-up + one top-down pass.
    let primes = prime_attributes_fpt(&schema);
    println!(
        "prime attributes via solve↓ enumeration:    {}",
        schema.render_set(&primes)
    );

    // A large generated instance (the Table 1 workload family).
    let inst = block_tree_instance(31);
    println!(
        "\ngenerated block-tree schema: {} attributes, {} FDs, width-{} decomposition",
        inst.schema.attr_count(),
        inst.schema.fd_count(),
        inst.td.width()
    );
    let ctx = PrimalityContext::from_parts(inst.encoding, inst.td);
    let start = std::time::Instant::now();
    let (prime_elems, stats) = enumerate_primes(&ctx);
    println!(
        "  {} primes found in {:.2} ms ({} solve facts over {} nodes)",
        prime_elems.len(),
        start.elapsed().as_secs_f64() * 1e3,
        stats.up_facts + stats.down_facts,
        stats.nodes
    );
    let expected: Vec<_> = inst
        .expected_primes
        .iter()
        .map(|&a| ctx.encoding.elem_of_attr(a))
        .collect();
    assert_eq!(prime_elems, expected, "analytic ground truth holds");
    println!("  matches the analytically known prime set");
}
