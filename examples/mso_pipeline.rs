//! The full MSO story in one binary (paper §1, §2.3, §4):
//!
//! 1. an MSO query evaluated naively (the MONA stand-in, exponential),
//! 2. the generic Theorem 4.5 compilation to quasi-guarded monadic
//!    datalog, evaluated in linear time over the τ_td encoding,
//! 3. the MSO-to-FTA baseline with its determinization blow-up.
//!
//! ```text
//! cargo run -p mdtw-examples --bin mso_pipeline
//! ```

use mdtw_datalog::{EvalOptions, Evaluator, FdCatalog};
use mdtw_decomp::{decompose, encode_tuple_td, Heuristic, NiceOptions, NiceTd, TupleTd};
use mdtw_fta::{mona_style_3col, nfta_3col, DetBudget};
use mdtw_graph::{encode_graph, partial_k_tree, Graph};
use mdtw_mso::{
    compile::compile_unary_filtered, eval_unary, has_neighbor, Budget, CompileLimits, IndVar,
};
use mdtw_structure::Structure;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Undirected loop-free edge relations (the class `encode_graph` emits).
fn undirected(s: &Structure) -> bool {
    let e = s.signature().lookup("e").expect("e");
    s.relation(e)
        .iter()
        .all(|t| t[0] != t[1] && s.holds(e, &[t[1], t[0]]))
}

fn main() {
    // --- 1. The query: φ(x) = ∃y e(x, y), over forests (treewidth 1). ---
    let phi = has_neighbor();
    println!(
        "query ϕ(x) = {phi}   (quantifier depth {})",
        phi.quantifier_depth()
    );

    let forest = Graph::from_edges(7, &[(0, 1), (1, 2), (3, 4), (2, 5)]);
    let structure = encode_graph(&forest);

    print!("naive MSO evaluation:       ");
    for v in structure.domain().elems() {
        let holds = eval_unary(&phi, IndVar(0), &structure, v, &mut Budget::unlimited()).unwrap();
        print!("{}", if holds { '1' } else { '0' });
    }
    println!("   (vertex 6 is isolated)");

    // --- 2. Theorem 4.5: compile ϕ to monadic datalog over τ_td. --------
    let sig = Arc::new(mdtw_graph::graph_signature());
    let compiled = compile_unary_filtered(
        &phi,
        IndVar(0),
        &sig,
        1,
        CompileLimits::default(),
        &undirected,
    )
    .expect("toy parameters compile");
    println!(
        "Theorem 4.5 compilation:    {} rules, {} bottom-up / {} top-down types",
        compiled.program.rules.len(),
        compiled.up_types,
        compiled.down_types
    );

    let td = decompose(&structure, Heuristic::MinDegree);
    let tuple_td = TupleTd::from_td_with_width(&td, structure.domain().len(), 1).unwrap();
    let enc = encode_tuple_td(&structure, &tuple_td);
    let catalog = FdCatalog::for_td_signature(&enc.structure);
    // An attached FdCatalog makes the session dispatch to the linear-time
    // quasi-guarded pipeline of Theorem 4.4.
    let mut session = Evaluator::with_options(
        compiled.program.clone(),
        EvalOptions::new().fd_catalog(catalog),
    )
    .unwrap();
    let result = session.evaluate(&enc.structure).unwrap();
    print!("compiled datalog (linear):  ");
    for v in structure.domain().elems() {
        let holds = result.store.holds(compiled.phi, &[v]);
        print!("{}", if holds { '1' } else { '0' });
    }
    let qg = result
        .qg
        .expect("quasi-guarded run reports grounding stats");
    println!(
        "   ({} ground rules, {} ground atoms)",
        qg.ground_rules, qg.ground_atoms
    );

    // --- 3. The MSO-to-FTA baseline on 3-Colorability. -------------------
    println!("\nMSO-to-FTA baseline (3-Colorability):");
    let mut rng = SmallRng::seed_from_u64(3);
    for w in [1usize, 2, 3, 4] {
        let (g, gtd) = partial_k_tree(&mut rng, 30, w, 0.8);
        let nice = NiceTd::from_td(&gtd, NiceOptions::default());
        let linear = nfta_3col(&g, &nice);
        let budget = DetBudget {
            max_states: 20_000,
            max_transitions: 1 << 21,
        };
        match mona_style_3col(&g, &nice, budget) {
            Ok((ok, dfta)) => println!(
                "  width {w}: NFTA(linear) = {linear}, determinized = {ok} \
                 ({} DFTA states, {} transitions)",
                dfta.n_states,
                dfta.transition_count()
            ),
            Err(explosion) => println!(
                "  width {w}: NFTA(linear) = {linear}, determinization EXPLODED \
                 ({} states, {} transitions — the paper's state explosion)",
                explosion.states, explosion.transitions
            ),
        }
    }
}
