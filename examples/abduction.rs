//! Propositional abduction over definite Horn theories (paper §7): the
//! relevance problem as a primality problem in disguise.
//!
//! ```text
//! cargo run -p mdtw-examples --bin abduction
//! ```

use mdtw_core::instance_from_clauses;

fn main() {
    // A small device-diagnosis theory:
    //   broken_pump ∧ power  → no_water
    //   clogged_pipe         → no_water
    //   power                → lights_on
    //   tripped_fuse         → lights_off (never observed here)
    let inst = instance_from_clauses(
        &[
            "broken_pump",
            "power",
            "clogged_pipe",
            "tripped_fuse",
            "no_water",
            "lights_on",
            "lights_off",
        ],
        &[
            (&["broken_pump", "power"], "no_water"),
            (&["clogged_pipe"], "no_water"),
            (&["power"], "lights_on"),
            (&["tripped_fuse"], "lights_off"),
        ],
        &["broken_pump", "power", "clogged_pipe", "tripped_fuse"],
        &["no_water", "lights_on"],
    );

    println!("theory (as a schema):\n{}", inst.schema);
    println!(
        "observed manifestations: {:?}",
        inst.manifestations
            .iter()
            .map(|&m| inst.schema.attr_name(m))
            .collect::<Vec<_>>()
    );

    println!("\nminimal explanations:");
    for e in inst.minimal_explanations() {
        let names: Vec<&str> = e.iter().map(|&a| inst.schema.attr_name(a)).collect();
        println!("  {{{}}}", names.join(", "));
    }

    println!("\nhypothesis relevance (∈ some minimal explanation):");
    for &h in &inst.hypotheses {
        println!(
            "  {:<13} relevant = {}",
            inst.schema.attr_name(h),
            inst.relevant(h)
        );
    }
}
