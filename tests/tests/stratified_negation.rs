//! Stratified negation, cross-validated three ways:
//!
//! * a property test that a default `Evaluator` session on random
//!   *semipositive* programs takes the single-stratum fast path, matches
//!   the naive ground truth, and is bit-identical when the session is
//!   reused (warm plan cache);
//! * a property test that the stratified session agrees with an
//!   independent brute-force per-stratum oracle on random *stratified*
//!   programs whose rules negate derived predicates;
//! * pinned multi-stratum fixtures (3 strata, negation chains) with exact
//!   expected models, checked against the same oracle.

use mdtw_datalog::{
    parse_program, stratify, Atom, Engine, EvalError, EvalOptions, Evaluator, IdbId, Literal,
    PredRef, Program, Rule, StratificationError, Term, Var,
};
use mdtw_structure::{Domain, ElemId, PredId, Signature, Structure};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

const NVARS: u8 = 3;

fn build_structure(n: usize, edges: &[(u8, u8)], marks: &[u8]) -> Structure {
    let sig = Arc::new(Signature::from_pairs([("e", 2), ("m", 1)]));
    let dom = Domain::anonymous(n);
    let mut s = Structure::new(sig, dom);
    let e = s.signature().lookup("e").unwrap();
    let m = s.signature().lookup("m").unwrap();
    for &(a, b) in edges {
        s.insert(
            e,
            &[ElemId(a as u32 % n as u32), ElemId(b as u32 % n as u32)],
        );
    }
    for &a in marks {
        s.insert(m, &[ElemId(a as u32 % n as u32)]);
    }
    s
}

// ---------------------------------------------------------------------------
// Brute-force per-stratum oracle
// ---------------------------------------------------------------------------

/// Evaluates `program` stratum by stratum with brute-force substitution
/// enumeration: every rule is tried under every assignment of domain
/// elements to its variables, positives and negatives are checked against
/// the fact sets directly, and each stratum runs to fixpoint before the
/// next starts. Independent of the engine's join plans, delta sets,
/// rewriting and materialization — it shares only the stratum assignment.
fn oracle(program: &Program, s: &Structure) -> Vec<Vec<Vec<ElemId>>> {
    let strat = stratify(program).expect("oracle needs a stratifiable program");
    let elems: Vec<ElemId> = s.domain().elems().collect();
    let mut facts: Vec<HashSet<Vec<ElemId>>> = vec![HashSet::new(); program.idb_count()];

    let instantiate = |atom: &Atom, asg: &[ElemId]| -> Vec<ElemId> {
        atom.terms
            .iter()
            .map(|t| match t {
                Term::Const(c) => *c,
                Term::Var(v) => asg[v.index()],
            })
            .collect()
    };

    for stratum_rules in strat.strata() {
        loop {
            let mut changed = false;
            for &ri in stratum_rules {
                let rule = &program.rules[ri];
                let nvars = rule.var_count as usize;
                // Odometer over all assignments domain^nvars (including
                // the single empty assignment for ground rules).
                let mut asg: Vec<usize> = vec![0; nvars];
                'assignments: loop {
                    let values: Vec<ElemId> = asg.iter().map(|&i| elems[i]).collect();
                    let body_holds = rule.body.iter().all(|lit| {
                        let tuple = instantiate(&lit.atom, &values);
                        let holds = match lit.atom.pred {
                            PredRef::Edb(p) => s.holds(p, &tuple),
                            PredRef::Idb(id) => facts[id.index()].contains(&tuple),
                        };
                        holds == lit.positive
                    });
                    if body_holds {
                        let head = instantiate(&rule.head, &values);
                        let PredRef::Idb(id) = rule.head.pred else {
                            panic!("oracle: IDB heads only");
                        };
                        changed |= facts[id.index()].insert(head);
                    }
                    // Next assignment.
                    for slot in &mut asg {
                        *slot += 1;
                        if *slot < elems.len() {
                            continue 'assignments;
                        }
                        *slot = 0;
                    }
                    break;
                }
            }
            if !changed {
                break;
            }
        }
    }

    facts
        .into_iter()
        .map(|set| {
            let mut v: Vec<Vec<ElemId>> = set.into_iter().collect();
            v.sort();
            v
        })
        .collect()
}

fn assert_store_matches_oracle(program: &Program, s: &Structure) {
    let expected = oracle(program, s);
    let result = Evaluator::new(program.clone())
        .unwrap()
        .evaluate(s)
        .unwrap();
    let (store, stats) = (result.store, result.stats);
    let mut total = 0;
    for (idb, expected_tuples) in expected.iter().enumerate() {
        let id = IdbId(idb as u32);
        assert_eq!(
            &store.tuples(id),
            expected_tuples,
            "idb {} (`{}`)",
            idb,
            program.idb_names[idb]
        );
        total += expected_tuples.len();
    }
    assert_eq!(stats.facts, total, "facts counter matches the model size");
    assert_eq!(store.fact_count(), total);
}

// ---------------------------------------------------------------------------
// Pinned multi-stratum fixtures
// ---------------------------------------------------------------------------

fn fixture_structure() -> Structure {
    // 0 → 1 → 2, isolated 3, self-loop 4; marks on 0 and 3.
    build_structure(5, &[(0, 1), (1, 2), (4, 4)], &[0, 3])
}

#[test]
fn three_stratum_negation_chain_pinned() {
    let s = fixture_structure();
    let p = parse_program(
        "reach(X) :- m(X).\n\
         reach(Y) :- reach(X), e(X, Y).\n\
         dark(X) :- e(X, Y), !reach(X).\n\
         calm(X) :- m(X), !dark(X), !e(X, X).",
        &s,
    )
    .unwrap();
    let mut session = Evaluator::new(p.clone()).unwrap();
    let strat = session.stratification();
    assert_eq!(strat.stratum_count(), 3);
    assert_eq!(strat.stratum_of(p.idb("reach").unwrap()), 0);
    assert_eq!(strat.stratum_of(p.idb("dark").unwrap()), 1);
    assert_eq!(strat.stratum_of(p.idb("calm").unwrap()), 2);

    let result = session.evaluate(&s).unwrap();
    let (store, stats) = (result.store, result.stats);
    assert_eq!(stats.strata, 3);
    // reach = {0,1,2,3}; dark = sources not reached = {4}; calm = marked,
    // not dark, no self-loop = {0,3}.
    assert_eq!(
        store.unary(p.idb("reach").unwrap()),
        vec![ElemId(0), ElemId(1), ElemId(2), ElemId(3)]
    );
    assert_eq!(store.unary(p.idb("dark").unwrap()), vec![ElemId(4)]);
    assert_eq!(
        store.unary(p.idb("calm").unwrap()),
        vec![ElemId(0), ElemId(3)]
    );
    assert_store_matches_oracle(&p, &s);
}

#[test]
fn defended_nodes_fixture_matches_oracle() {
    // Attack digraph: 0→1, 1→2, 3→2, 2→3 (2 and 3 attack each other).
    let s = build_structure(5, &[(0, 1), (1, 2), (3, 2), (2, 3)], &[0, 1, 2, 3, 4]);
    let p = parse_program(
        "attacked(X) :- e(Y, X).\n\
         unanswered(X) :- e(Y, X), !attacked(Y).\n\
         defended(X) :- m(X), !unanswered(X).",
        &s,
    )
    .unwrap();
    let result = Evaluator::new(p.clone()).unwrap().evaluate(&s).unwrap();
    let (store, stats) = (result.store, result.stats);
    assert_eq!(stats.strata, 3);
    // attacked = {1,2,3}; unanswered = {1} (only 0 is an unattacked
    // attacker); defended = everything else = {0,2,3,4}.
    assert_eq!(store.unary(p.idb("unanswered").unwrap()), vec![ElemId(1)]);
    assert_eq!(
        store.unary(p.idb("defended").unwrap()),
        vec![ElemId(0), ElemId(2), ElemId(3), ElemId(4)]
    );
    assert_store_matches_oracle(&p, &s);
}

#[test]
fn recursion_above_a_negation_matches_oracle() {
    // Stratum 1 recurses (transitively closes) over facts that exist only
    // because of a negation — the materialized lower stratum must feed
    // the higher stratum's semi-naive loop.
    let s = build_structure(6, &[(0, 1), (1, 2), (2, 3), (3, 4)], &[0]);
    let p = parse_program(
        "near(X) :- m(X).\n\
         near(Y) :- near(X), e(X, Y), !m(Y).\n\
         far_edge(X, Y) :- e(X, Y), !near(X).\n\
         far_path(X, Y) :- far_edge(X, Y).\n\
         far_path(X, Z) :- far_path(X, Y), far_edge(Y, Z).",
        &s,
    )
    .unwrap();
    let strat = stratify(&p).unwrap();
    assert_eq!(strat.stratum_count(), 2);
    assert_store_matches_oracle(&p, &s);
}

#[test]
fn negation_in_scc_fails_with_named_cycle() {
    // win-move over `e`, hand-built (the parser already rejects it).
    let mut p = Program::default();
    let s = fixture_structure();
    let e = s.signature().lookup("e").unwrap();
    let win = p.intern_idb("win", 1).unwrap();
    p.rules.push(Rule {
        head: Atom {
            pred: PredRef::Idb(win),
            terms: vec![Term::Var(Var(0))],
        },
        body: vec![
            Literal {
                atom: Atom {
                    pred: PredRef::Edb(e),
                    terms: vec![Term::Var(Var(0)), Term::Var(Var(1))],
                },
                positive: true,
            },
            Literal {
                atom: Atom {
                    pred: PredRef::Idb(win),
                    terms: vec![Term::Var(Var(1))],
                },
                positive: false,
            },
        ],
        var_count: 2,
        var_names: vec!["X".into(), "Y".into()],
    });
    let err = Evaluator::new(p).unwrap_err();
    match &err {
        EvalError::Stratification(StratificationError::NegativeCycle {
            rule,
            negated,
            cycle,
        }) => {
            assert_eq!(*rule, 0);
            assert_eq!(negated, "win");
            assert_eq!(cycle, &vec!["win".to_string()]);
        }
        other => panic!("expected NegativeCycle, got {other:?}"),
    }
    assert!(err.to_string().contains("win"));

    // The parser rejects the same program with the cycle in the message.
    let perr = parse_program("win(X) :- e(X, Y), !win(Y).", &s).unwrap_err();
    assert!(perr.message.contains("win"), "{perr}");
    assert!(perr.message.contains("recursive component"), "{perr}");
}

// ---------------------------------------------------------------------------
// Random semipositive programs: the session fast path ≡ ground truth
// ---------------------------------------------------------------------------

/// Raw material for one body literal: `(kind, arg, arg)`.
type RawLit = (u8, u8, u8);
/// Raw rule: `(head pick, (head args), positive body, negative pick)`.
type RawRule = (u8, (u8, u8), Vec<RawLit>, RawLit);

fn var(i: u8) -> Term {
    Term::Var(Var((i % NVARS) as u32))
}

/// Positive body literal kinds: e/2, m/1, q0/1, q1/2.
fn positive_literal(raw: RawLit, e: PredId, m: PredId) -> Literal {
    let (kind, a, b) = raw;
    let atom = match kind % 4 {
        0 => Atom {
            pred: PredRef::Edb(e),
            terms: vec![var(a), var(b)],
        },
        1 => Atom {
            pred: PredRef::Edb(m),
            terms: vec![var(a)],
        },
        2 => Atom {
            pred: PredRef::Idb(IdbId(0)),
            terms: vec![var(a)],
        },
        _ => Atom {
            pred: PredRef::Idb(IdbId(1)),
            terms: vec![var(a), var(b)],
        },
    };
    Literal {
        atom,
        positive: true,
    }
}

/// A random always-safe *semipositive* program over q0/1 and q1/2 (the
/// generator of `engine_equivalence`, reused for the stratified-vs-plain
/// agreement property).
fn build_semipositive_program(raw_rules: &[RawRule], structure: &Structure) -> Program {
    let e = structure.signature().lookup("e").unwrap();
    let m = structure.signature().lookup("m").unwrap();
    let mut program = Program::default();
    program.intern_idb("q0", 1).unwrap();
    program.intern_idb("q1", 2).unwrap();

    for (head_pick, (h1, h2), body_raw, neg_raw) in raw_rules {
        let body: Vec<Literal> = body_raw
            .iter()
            .map(|&raw| positive_literal(raw, e, m))
            .collect();
        let mut pos_vars: Vec<Var> = body
            .iter()
            .flat_map(|l| l.atom.vars().collect::<Vec<_>>())
            .collect();
        pos_vars.sort();
        pos_vars.dedup();
        let pick = |sel: u8| Term::Var(pos_vars[sel as usize % pos_vars.len()]);

        let head = if head_pick % 2 == 0 {
            Atom {
                pred: PredRef::Idb(IdbId(0)),
                terms: vec![pick(*h1)],
            }
        } else {
            Atom {
                pred: PredRef::Idb(IdbId(1)),
                terms: vec![pick(*h1), pick(*h2)],
            }
        };

        let mut body = body;
        let (nkind, na, nb) = *neg_raw;
        match nkind % 3 {
            0 => {}
            1 => body.push(Literal {
                atom: Atom {
                    pred: PredRef::Edb(e),
                    terms: vec![pick(na), pick(nb)],
                },
                positive: false,
            }),
            _ => body.push(Literal {
                atom: Atom {
                    pred: PredRef::Edb(m),
                    terms: vec![pick(na)],
                },
                positive: false,
            }),
        }

        program.rules.push(Rule {
            head,
            body,
            var_count: NVARS as u32,
            var_names: vec!["X".into(), "Y".into(), "Z".into()],
        });
    }
    program
        .check_semipositive()
        .expect("generator builds semipositive programs");
    program
}

/// Like the semipositive generator, but with a third predicate `q2/1`
/// whose rules may *negate* q0, q1 or self-recurse positively — always
/// stratifiable by construction (q2 never occurs below q0/q1).
fn build_stratified_program(
    raw_rules: &[RawRule],
    upper_rules: &[(u8, Vec<RawLit>, RawLit)],
    structure: &Structure,
) -> Program {
    let e = structure.signature().lookup("e").unwrap();
    let m = structure.signature().lookup("m").unwrap();
    let mut program = build_semipositive_program(raw_rules, structure);
    let q2 = program.intern_idb("q2", 1).unwrap();

    for (h1, body_raw, neg_raw) in upper_rules {
        // Positive kinds here: e/2, m/1, q0/1, q1/2, q2/1.
        let body: Vec<Literal> = body_raw
            .iter()
            .map(|&(kind, a, b)| match kind % 5 {
                4 => Literal {
                    atom: Atom {
                        pred: PredRef::Idb(q2),
                        terms: vec![var(a)],
                    },
                    positive: true,
                },
                k => positive_literal((k, a, b), e, m),
            })
            .collect();
        let mut pos_vars: Vec<Var> = body
            .iter()
            .flat_map(|l| l.atom.vars().collect::<Vec<_>>())
            .collect();
        pos_vars.sort();
        pos_vars.dedup();
        let pick = |sel: u8| Term::Var(pos_vars[sel as usize % pos_vars.len()]);

        let mut body = body;
        let (nkind, na, nb) = *neg_raw;
        // Negative kinds: none, !e, !m, !q0, !q1 — the last two negate
        // *derived* predicates of the stratum below.
        match nkind % 5 {
            0 => {}
            1 => body.push(Literal {
                atom: Atom {
                    pred: PredRef::Edb(e),
                    terms: vec![pick(na), pick(nb)],
                },
                positive: false,
            }),
            2 => body.push(Literal {
                atom: Atom {
                    pred: PredRef::Edb(m),
                    terms: vec![pick(na)],
                },
                positive: false,
            }),
            3 => body.push(Literal {
                atom: Atom {
                    pred: PredRef::Idb(IdbId(0)),
                    terms: vec![pick(na)],
                },
                positive: false,
            }),
            _ => body.push(Literal {
                atom: Atom {
                    pred: PredRef::Idb(IdbId(1)),
                    terms: vec![pick(na), pick(nb)],
                },
                positive: false,
            }),
        }

        program.rules.push(Rule {
            head: Atom {
                pred: PredRef::Idb(q2),
                terms: vec![pick(*h1)],
            },
            body,
            var_count: NVARS as u32,
            var_names: vec!["X".into(), "Y".into(), "Z".into()],
        });
    }
    for rule in &program.rules {
        assert!(rule.is_safe(), "generator must only build safe rules");
    }
    program
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    #[test]
    fn session_fast_path_on_semipositive_programs(
        n in 2usize..6,
        edges in vec((0u8..8, 0u8..8), 0..10),
        marks in vec(0u8..8, 0..4),
        raw_rules in vec(
            (
                0u8..4,
                (0u8..8, 0u8..8),
                vec((0u8..8, 0u8..8, 0u8..8), 1..4),
                (0u8..6, 0u8..8, 0u8..8),
            ),
            1..5,
        ),
    ) {
        let s = build_structure(n, &edges, &marks);
        let p = build_semipositive_program(&raw_rules, &s);
        // A default session on a semipositive program takes the
        // single-stratum fast path (no rewriting, no extension).
        let mut session = Evaluator::new(p.clone()).unwrap();
        let cold = session.evaluate(&s).unwrap();
        prop_assert_eq!(cold.stats.strata, 1);
        prop_assert_eq!(cold.stats.plan_cache_hits, 0);
        // Warm session reuse is bit-identical, modulo the cache hit.
        let warm = session.evaluate(&s).unwrap();
        prop_assert_eq!(warm.stats.plan_cache_hits, 1);
        for idb in 0..p.idb_count() {
            let id = IdbId(idb as u32);
            prop_assert_eq!(cold.store.tuples(id), warm.store.tuples(id), "idb {}", idb);
        }
        prop_assert_eq!(cold.stats.facts, warm.stats.facts);
        prop_assert_eq!(cold.stats.firings, warm.stats.firings);
        prop_assert_eq!(cold.stats.rounds, warm.stats.rounds);
        prop_assert_eq!(cold.stats.negative_checks, warm.stats.negative_checks);
        // And the fixpoint matches the naive ground truth.
        let naive = Evaluator::with_options(p.clone(), EvalOptions::new().engine(Engine::Naive))
            .unwrap()
            .evaluate(&s)
            .unwrap();
        for idb in 0..p.idb_count() {
            let id = IdbId(idb as u32);
            prop_assert_eq!(naive.store.tuples(id), cold.store.tuples(id), "idb {}", idb);
        }
        prop_assert_eq!(naive.stats.facts, cold.stats.facts);
    }

    #[test]
    fn stratified_matches_bruteforce_oracle(
        n in 2usize..5,
        edges in vec((0u8..8, 0u8..8), 0..8),
        marks in vec(0u8..8, 0..4),
        raw_rules in vec(
            (
                0u8..4,
                (0u8..8, 0u8..8),
                vec((0u8..8, 0u8..8, 0u8..8), 1..3),
                (0u8..6, 0u8..8, 0u8..8),
            ),
            1..4,
        ),
        upper_rules in vec(
            (
                0u8..8,
                vec((0u8..10, 0u8..8, 0u8..8), 1..3),
                (0u8..10, 0u8..8, 0u8..8),
            ),
            1..4,
        ),
    ) {
        let s = build_structure(n, &edges, &marks);
        let p = build_stratified_program(&raw_rules, &upper_rules, &s);
        let expected = oracle(&p, &s);
        let result = Evaluator::new(p.clone()).unwrap().evaluate(&s).unwrap();
        let (store, stats) = (result.store, result.stats);
        let mut total = 0;
        for (idb, expected_tuples) in expected.iter().enumerate() {
            let id = IdbId(idb as u32);
            prop_assert_eq!(&store.tuples(id), expected_tuples, "idb {}", idb);
            total += expected_tuples.len();
        }
        prop_assert_eq!(stats.facts, total);
        prop_assert!(stats.strata >= 1);
    }
}
