//! Empirical linearity checks (Theorem 4.4 / Theorem 5.3 / Theorem 5.4)
//! using deterministic *work counts* rather than wall-clock time: the
//! number of solve facts and ground rules per decomposition node must
//! stay bounded as instances grow.

use mdtw_core::{enumerate_primes, ground_three_col, PrimalityContext, ThreeColSolver};
use mdtw_decomp::{NiceOptions, NiceTd};
use mdtw_graph::partial_k_tree;
use mdtw_schema::{block_tree_instance, encode_schema};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn primality_solve_facts_scale_linearly() {
    // Facts per node must stay within a constant band while the instance
    // grows 16-fold (tw fixed at 3).
    let mut per_node = Vec::new();
    for k in [2usize, 8, 32] {
        let inst = block_tree_instance(k);
        let ctx = PrimalityContext::from_parts(encode_schema(&inst.schema), inst.td);
        let (_, stats) = enumerate_primes(&ctx);
        per_node.push((stats.up_facts + stats.down_facts) as f64 / stats.nodes as f64);
    }
    let (min, max) = (
        per_node.iter().copied().fold(f64::INFINITY, f64::min),
        per_node.iter().copied().fold(0.0, f64::max),
    );
    assert!(
        max / min < 3.0,
        "facts per node must stay bounded: {per_node:?}"
    );
}

#[test]
fn three_col_solve_facts_scale_linearly() {
    let mut rng = SmallRng::seed_from_u64(99);
    let mut per_node = Vec::new();
    for n in [50usize, 200, 800] {
        let (g, td) = partial_k_tree(&mut rng, n, 3, 0.8);
        let nice = NiceTd::from_td(&td, NiceOptions::default());
        let solver = ThreeColSolver::run(&g, &nice);
        per_node.push(solver.fact_count as f64 / nice.len() as f64);
    }
    let (min, max) = (
        per_node.iter().copied().fold(f64::INFINITY, f64::min),
        per_node.iter().copied().fold(0.0, f64::max),
    );
    assert!(
        max / min < 3.0,
        "facts per node must stay bounded: {per_node:?}"
    );
}

#[test]
fn ground_program_size_is_linear_with_larger_constant() {
    // The fully materialized monadic program is also linear in the data —
    // but §6 optimization (1) predicts the DP reaches fewer facts.
    let mut rng = SmallRng::seed_from_u64(17);
    for n in [60usize, 120] {
        let (g, td) = partial_k_tree(&mut rng, n, 3, 0.8);
        let nice = NiceTd::from_td(&td, NiceOptions::default());
        let ground = ground_three_col(&g, &nice);
        let dp = ThreeColSolver::run(&g, &nice);
        assert!(ground.atom_count() >= dp.fact_count, "n = {n}");
        // Materialization stays within the 3^{w+1} per-node envelope.
        assert!(ground.atom_count() <= 81 * nice.len() + 1, "n = {n}");
    }
}

#[test]
fn enumeration_pass_visits_each_node_a_constant_number_of_times() {
    // solve↓ adds one table per node: total tables = 2 · nodes.
    let inst = block_tree_instance(12);
    let ctx = PrimalityContext::from_parts(encode_schema(&inst.schema), inst.td);
    let up = ctx.run_up();
    let down = ctx.run_down(&up);
    assert_eq!(up.len(), ctx.nice.len());
    assert_eq!(down.len(), ctx.nice.len());
}
