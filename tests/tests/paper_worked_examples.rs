//! The paper's worked examples, end to end: Examples 2.1, 2.2, 2.5, 2.6
//! and the Figure 1/2/4 decomposition pipeline, validated across every
//! engine in the workspace.

use mdtw_core::{is_prime_fpt, prime_attributes_fpt};
use mdtw_decomp::{exact_treewidth, NiceOptions, NiceTd, PrimalGraph, TupleNodeKind, TupleTd};
use mdtw_mso::{eval_unary, primality, Budget, IndVar};
use mdtw_schema::{encode_schema, example_2_1, example_2_2};

#[test]
fn example_2_1_keys_and_primes() {
    let schema = example_2_1();
    let keys = schema.keys();
    let rendered: Vec<String> = keys.iter().map(|k| schema.render_set(k)).collect();
    assert_eq!(rendered, vec!["abd", "acd"]);
    assert_eq!(schema.render_set(&schema.prime_attributes_exact()), "abcd");
}

#[test]
fn example_2_2_structure_and_treewidth() {
    // "The tree decomposition in Figure 1 is optimal and tw(𝒜) = 2."
    let (enc, td) = example_2_2();
    assert_eq!(td.validate(&enc.structure), Ok(()));
    assert_eq!(td.width(), 2);
    assert_eq!(exact_treewidth(&PrimalGraph::of(&enc.structure)), 2);
}

#[test]
fn example_2_5_normalization_preserves_width() {
    // "Note that T and T′ have identical width" (Example 2.5).
    let (enc, td) = example_2_2();
    let norm = TupleTd::from_td(&td, enc.structure.domain().len()).unwrap();
    assert_eq!(norm.validate_normal_form(), Ok(()));
    assert_eq!(norm.width(), td.width());
    // The normalized tree uses all three internal node kinds plus leaves
    // (Figure 2 shows permutation, element replacement and branch nodes).
    let mut kinds = [false; 4];
    for id in norm.node_ids() {
        match norm.kind(id) {
            TupleNodeKind::Leaf => kinds[0] = true,
            TupleNodeKind::Permutation => kinds[1] = true,
            TupleNodeKind::ElementReplacement => kinds[2] = true,
            TupleNodeKind::Branch => kinds[3] = true,
        }
    }
    assert!(kinds[0] && kinds[2], "leaves and replacements must occur");
    // Round-trip: still a valid decomposition of the structure.
    assert_eq!(norm.to_set_td().validate(&enc.structure), Ok(()));
}

#[test]
fn figure_4_modified_normal_form() {
    let (enc, td) = example_2_2();
    let nice = NiceTd::from_td(&td, NiceOptions::default());
    assert_eq!(nice.validate_nice_form(), Ok(()));
    assert_eq!(nice.width(), 2);
    assert_eq!(nice.to_set_td().validate(&enc.structure), Ok(()));
    let (leaves, intro, forget, branch) = nice.kind_histogram();
    assert!(leaves > 0 && intro > 0 && forget > 0 && branch > 0);
}

#[test]
fn example_2_6_mso_and_figure_6_agree() {
    // (𝒜, a) ⊨ ϕ(x), (𝒜, e) ⊭ ϕ(x) — and the datalog solver agrees with
    // the MSO characterization on every attribute.
    let schema = example_2_1();
    let enc = encode_schema(&schema);
    let phi = primality();
    for attr in schema.attrs() {
        let elem = enc.elem_of_attr(attr);
        let via_mso = eval_unary(
            &phi,
            IndVar(0),
            &enc.structure,
            elem,
            &mut Budget::unlimited(),
        )
        .unwrap();
        let via_datalog = is_prime_fpt(&schema, attr);
        let via_keys = schema.is_prime_exact(attr);
        assert_eq!(via_mso, via_datalog, "{}", schema.attr_name(attr));
        assert_eq!(via_mso, via_keys, "{}", schema.attr_name(attr));
    }
}

#[test]
fn enumeration_matches_on_running_example() {
    let schema = example_2_1();
    assert_eq!(schema.render_set(&prime_attributes_fpt(&schema)), "abcd");
}
