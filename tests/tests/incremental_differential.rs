//! Differential property tests for incremental view maintenance: a
//! [`MaterializedView`] fed random interleaved insert/retract batches
//! must stay **bit-identical** to a from-scratch `evaluate()` of the
//! mutated base structure — for a semipositive program (recursion plus
//! negated extensional atoms in one stratum) and a three-stratum
//! program whose deltas must cross two negation boundaries. Pinned
//! edge cases cover the empty-delta no-op and retract-everything.

use mdtw_datalog::{parse_program, Evaluator, IdbId, MaterializedView, Update};
use mdtw_structure::{Domain, ElemId, PredId, Signature, Structure};
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;

/// Single stratum: recursion + negation on extensional atoms, so edge
/// deltas flow through both the positive and the negated side.
const SEMIPOSITIVE: &str = "t(X, Y) :- e(X, Y).\n\
                            t(X, Z) :- t(X, Y), e(Y, Z).\n\
                            nl(X, Y) :- m(X), m(Y), !e(X, Y).";

/// Three strata: `r` (reachability from marks), `u`/`uu` negating `r`,
/// `z` negating `uu` — a base delta has to propagate across two
/// derived-negation boundaries as extended-EDB deltas.
const STRATIFIED: &str = "r(X) :- m(X).\n\
                          r(Y) :- r(X), e(X, Y).\n\
                          u(X, Y) :- e(X, Y), !r(Y).\n\
                          uu(X) :- u(X, Y).\n\
                          z(X) :- m(X), !uu(X).";

fn build_structure(n: usize, edges: &[(u8, u8)], marks: &[u8]) -> Structure {
    let sig = Arc::new(Signature::from_pairs([("e", 2), ("m", 1)]));
    let dom = Domain::anonymous(n);
    let mut s = Structure::new(sig, dom);
    let e = s.signature().lookup("e").unwrap();
    let m = s.signature().lookup("m").unwrap();
    for &(a, b) in edges {
        s.insert(
            e,
            &[ElemId(a as u32 % n as u32), ElemId(b as u32 % n as u32)],
        );
    }
    for &a in marks {
        s.insert(m, &[ElemId(a as u32 % n as u32)]);
    }
    s
}

/// One base mutation: insert?/retract (odd = insert), edge?/mark
/// (odd = edge), endpoints (taken modulo the domain size).
type Mutation = (u8, u8, u8, u8);

fn sorted_rel(s: &Structure, p: PredId) -> Vec<Vec<ElemId>> {
    let mut rows: Vec<Vec<ElemId>> = s.relation(p).iter().map(<[ElemId]>::to_vec).collect();
    rows.sort_unstable();
    rows
}

/// The invariant: the view's base equals the independently mutated
/// structure, and its store is bit-identical (per-predicate sorted
/// tuple lists) to a cold evaluation of that structure.
fn assert_view_matches(view: &MaterializedView, expected: &Structure, ctx: &str) {
    let base = view.base_structure();
    for i in 0..expected.signature().len() {
        let p = PredId(i as u32);
        assert_eq!(
            sorted_rel(&base, p),
            sorted_rel(expected, p),
            "{ctx}: base relation `{}` diverged",
            expected.signature().name(p)
        );
    }
    let mut fresh = Evaluator::new(view.program().clone()).unwrap();
    let result = fresh.evaluate(expected).unwrap();
    for i in 0..view.program().idb_count() {
        let id = IdbId(i as u32);
        assert_eq!(
            view.store().tuples(id),
            result.store.tuples(id),
            "{ctx}: derived `{}` diverged from scratch evaluation",
            view.program().idb_names[i]
        );
    }
}

/// Applies the batches to a view and, in lockstep, to a plain mutable
/// structure; checks the invariant after every batch.
fn run_case(source: &str, n: usize, edges: &[(u8, u8)], marks: &[u8], batches: &[Vec<Mutation>]) {
    let mut expected = build_structure(n, edges, marks);
    let e = expected.signature().lookup("e").unwrap();
    let m = expected.signature().lookup("m").unwrap();
    let program = parse_program(source, &expected).unwrap();
    let mut view = Evaluator::new(program)
        .unwrap()
        .materialize(&expected)
        .unwrap();
    assert_view_matches(&view, &expected, "initial materialization");
    for (bi, batch) in batches.iter().enumerate() {
        let mut update = Update::new();
        for &(insert, is_edge, a, b) in batch {
            let a = ElemId(a as u32 % n as u32);
            let b = ElemId(b as u32 % n as u32);
            let (pred, tuple) = if is_edge % 2 == 1 {
                (e, vec![a, b])
            } else {
                (m, vec![a])
            };
            if insert % 2 == 1 {
                update.push_insert(pred, &tuple);
            } else {
                update.push_retract(pred, &tuple);
            }
        }
        // Mirror the batch's normalized set semantics on the oracle
        // structure: retracts first, inserts win.
        for pass in [0u8, 1] {
            for &(insert, is_edge, a, b) in batch {
                if insert % 2 != pass {
                    continue;
                }
                let a = ElemId(a as u32 % n as u32);
                let b = ElemId(b as u32 % n as u32);
                match (pass, is_edge % 2 == 1) {
                    (0, true) => expected.retract(e, &[a, b]),
                    (0, false) => expected.retract(m, &[a]),
                    (_, true) => expected.insert(e, &[a, b]),
                    (_, false) => expected.insert(m, &[a]),
                };
            }
        }
        view.apply(&update);
        assert_view_matches(&view, &expected, &format!("after batch {bi}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn semipositive_view_matches_scratch(
        n in 3usize..=7,
        edges in vec((0u8..16, 0u8..16), 0..12),
        marks in vec(0u8..16, 0..5),
        batches in vec(vec((0u8..2, 0u8..2, 0u8..16, 0u8..16), 0..6), 1..5),
    ) {
        run_case(SEMIPOSITIVE, n, &edges, &marks, &batches);
    }

    #[test]
    fn stratified_view_matches_scratch(
        n in 3usize..=7,
        edges in vec((0u8..16, 0u8..16), 0..12),
        marks in vec(0u8..16, 0..5),
        batches in vec(vec((0u8..2, 0u8..2, 0u8..16, 0u8..16), 0..6), 1..5),
    ) {
        run_case(STRATIFIED, n, &edges, &marks, &batches);
    }
}

#[test]
fn empty_delta_is_a_noop_for_both_shapes() {
    for source in [SEMIPOSITIVE, STRATIFIED] {
        let s = build_structure(5, &[(0, 1), (1, 2), (2, 3)], &[0]);
        let program = parse_program(source, &s).unwrap();
        let mut view = Evaluator::new(program).unwrap().materialize(&s).unwrap();
        let before: Vec<_> = (0..view.program().idb_count())
            .map(|i| view.store().tuples(IdbId(i as u32)))
            .collect();
        let profile = view.apply(&Update::new());
        assert_eq!(profile.overdeleted + profile.inserted + profile.deleted, 0);
        assert!(profile.strata.is_empty(), "no-op skips all strata");
        for (i, tuples) in before.iter().enumerate() {
            assert_eq!(&view.store().tuples(IdbId(i as u32)), tuples);
        }
        assert_view_matches(&view, &s, "empty delta");
    }
}

#[test]
fn retract_everything_for_both_shapes() {
    for source in [SEMIPOSITIVE, STRATIFIED] {
        let edges = [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)];
        let marks = [0, 2];
        let mut expected = build_structure(4, &edges, &marks);
        let e = expected.signature().lookup("e").unwrap();
        let m = expected.signature().lookup("m").unwrap();
        let program = parse_program(source, &expected).unwrap();
        let mut view = Evaluator::new(program)
            .unwrap()
            .materialize(&expected)
            .unwrap();
        let mut update = Update::new();
        for &(a, b) in &edges {
            let (a, b) = (ElemId(u32::from(a)), ElemId(u32::from(b)));
            update.push_retract(e, &[a, b]);
            expected.retract(e, &[a, b]);
        }
        for &a in &marks {
            let a = ElemId(u32::from(a));
            update.push_retract(m, &[a]);
            expected.retract(m, &[a]);
        }
        view.apply(&update);
        assert_view_matches(&view, &expected, "retract everything");
        // With an empty base, positive-bodied predicates must be empty.
        assert!(view.store().tuples(IdbId(0)).is_empty());
    }
}
