//! Empirical verification of the paper's §3 lemmas on induced
//! substructures: the k-type of the structure induced by a subtree `S_s`
//! is fully determined by the child types plus the bag-local data.
//!
//! The lemmas are proved by Ehrenfeucht–Fraïssé games in the paper; here
//! they are *checked* on concrete structures by computing rank-k types of
//! the induced substructures directly (mdtw-mso's type machinery).

use mdtw_decomp::{NodeId, TupleNodeKind, TupleTd};
use mdtw_graph::{encode_graph, partial_k_tree};
use mdtw_mso::TypeInterner;
use mdtw_structure::{ElemId, Structure};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Materializes `I(𝒜, S_s, s)`: the substructure induced by the union of
/// the bags in the subtree rooted at `s`, with the bag of `s`
/// distinguished. Returns the structure and the remapped bag.
fn induced_subtree(structure: &Structure, td: &TupleTd, s: NodeId) -> (Structure, Vec<ElemId>) {
    // Collect the subtree's elements.
    let mut live = vec![false; structure.domain().len()];
    let mut stack = vec![s];
    while let Some(node) = stack.pop() {
        for &e in td.bag(node) {
            live[e.index()] = true;
        }
        stack.extend(td.node(node).children.iter().copied());
    }
    let view = structure.induced(&|e: ElemId| live[e.index()]);
    let (owned, map) = view.materialize();
    let bag = td.bag(s).iter().map(|e| map[e]).collect();
    (owned, bag)
}

/// The rank-k types of every node's induced substructure.
fn subtree_types(
    structure: &Structure,
    td: &TupleTd,
    ti: &mut TypeInterner,
    k: usize,
) -> Vec<mdtw_mso::TypeId> {
    td.node_ids()
        .map(|s| {
            let (sub, bag) = induced_subtree(structure, td, s);
            ti.fo_type_of(&sub, &bag, k)
        })
        .collect()
}

/// Lemma 3.5, checked contrapositively on one structure: whenever two
/// nodes of the same kind have ≡ᵏ child subtrees and identical bag-local
/// data, their own subtrees are ≡ᵏ.
fn check_lemma_3_5(structure: &Structure, td: &TupleTd, k: usize) {
    let mut ti = TypeInterner::new();
    let types = subtree_types(structure, td, &mut ti, k);
    let nodes: Vec<NodeId> = td.node_ids().collect();
    for &s in &nodes {
        for &t in &nodes {
            if s == t || td.kind(s) != td.kind(t) {
                continue;
            }
            match td.kind(s) {
                TupleNodeKind::Permutation | TupleNodeKind::ElementReplacement => {
                    let cs = td.node(s).children[0];
                    let ct = td.node(t).children[0];
                    // Premises: equivalent child subtrees, identical
                    // relative bag arrangement (we require the full
                    // two-bag diagram to coincide).
                    if types[cs.index()] != types[ct.index()] {
                        continue;
                    }
                    let mut ext_s: Vec<ElemId> = td.bag(s).to_vec();
                    ext_s.extend_from_slice(td.bag(cs));
                    let mut ext_t: Vec<ElemId> = td.bag(t).to_vec();
                    ext_t.extend_from_slice(td.bag(ct));
                    let (sub_s, _) = induced_subtree(structure, td, s);
                    let (sub_t, _) = induced_subtree(structure, td, t);
                    let _ = (sub_s, sub_t);
                    // Bag-diagram premise on the *original* structure:
                    if !structure.bags_equivalent(&ext_s, structure, &ext_t) {
                        continue;
                    }
                    // Permutation premise: identical index mapping
                    // between parent and child tuples.
                    let perm_s: Vec<Option<usize>> = td
                        .bag(s)
                        .iter()
                        .map(|e| td.bag(cs).iter().position(|x| x == e))
                        .collect();
                    let perm_t: Vec<Option<usize>> = td
                        .bag(t)
                        .iter()
                        .map(|e| td.bag(ct).iter().position(|x| x == e))
                        .collect();
                    if perm_s != perm_t {
                        continue;
                    }
                    assert_eq!(
                        types[s.index()],
                        types[t.index()],
                        "Lemma 3.5 violated at {s} vs {t}"
                    );
                }
                TupleNodeKind::Branch => {
                    let (s1, s2) = (td.node(s).children[0], td.node(s).children[1]);
                    let (t1, t2) = (td.node(t).children[0], td.node(t).children[1]);
                    let matched = (types[s1.index()] == types[t1.index()]
                        && types[s2.index()] == types[t2.index()])
                        || (types[s1.index()] == types[t2.index()]
                            && types[s2.index()] == types[t1.index()]);
                    if !matched {
                        continue;
                    }
                    assert_eq!(
                        types[s.index()],
                        types[t.index()],
                        "Lemma 3.5 (branch) violated at {s} vs {t}"
                    );
                }
                TupleNodeKind::Leaf => {}
            }
        }
    }
}

#[test]
fn lemma_3_5_holds_on_random_partial_k_trees() {
    let mut rng = SmallRng::seed_from_u64(314);
    for i in 0..6 {
        let (g, td) = partial_k_tree(&mut rng, 8 + i, 2, 0.7);
        let s = encode_graph(&g);
        let tuple_td = TupleTd::from_td(&td, s.domain().len()).unwrap();
        for k in 0..=1 {
            check_lemma_3_5(&s, &tuple_td, k);
        }
    }
}

#[test]
fn leaf_types_are_determined_by_bag_diagram() {
    // Degenerate case of the base construction in Theorem 4.5: two leaves
    // whose bags carry the same atomic diagram induce ≡ᵏ substructures
    // (leaf subtrees *are* their bags).
    let mut rng = SmallRng::seed_from_u64(42);
    let (g, td) = partial_k_tree(&mut rng, 10, 2, 0.6);
    let s = encode_graph(&g);
    let tuple_td = TupleTd::from_td(&td, s.domain().len()).unwrap();
    let mut ti = TypeInterner::new();
    let types = subtree_types(&s, &tuple_td, &mut ti, 1);
    let leaves: Vec<NodeId> = tuple_td
        .node_ids()
        .filter(|&n| tuple_td.node(n).children.is_empty())
        .collect();
    for &a in &leaves {
        for &b in &leaves {
            if s.bags_equivalent(tuple_td.bag(a), &s, tuple_td.bag(b)) {
                assert_eq!(types[a.index()], types[b.index()]);
            }
        }
    }
}

#[test]
fn subtree_of_root_is_whole_structure() {
    // Sanity for the harness itself: the root's induced substructure has
    // the full domain.
    let mut rng = SmallRng::seed_from_u64(5);
    let (g, td) = partial_k_tree(&mut rng, 9, 2, 0.8);
    let s = encode_graph(&g);
    let tuple_td = TupleTd::from_td(&td, s.domain().len()).unwrap();
    let (sub, bag) = induced_subtree(&s, &tuple_td, tuple_td.root());
    assert_eq!(sub.domain().len(), s.domain().len());
    assert_eq!(bag.len(), tuple_td.width() + 1);
    assert_eq!(sub.atom_count(), s.atom_count());
}
