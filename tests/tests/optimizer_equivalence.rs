//! The semantic transforms must be invisible on the declared outputs:
//! for any program, an `Evaluator` with `minimize`,
//! `eliminate_bounded_recursion` or `magic_sets` enabled derives exactly
//! the same relation for every output predicate as the untransformed
//! session — over random structures and random programs.

use mdtw_datalog::{parse_program, recursive_idb_scc_count, EvalOptions, Evaluator, LintCode};
use mdtw_structure::{Domain, ElemId, Signature, Structure};
use proptest::prelude::*;
use std::sync::Arc;

fn chain(n: usize) -> Structure {
    let sig = Arc::new(Signature::from_pairs([("e", 2), ("node", 1), ("first", 1)]));
    let mut s = Structure::new(sig, Domain::anonymous(n));
    let e = s.signature().lookup("e").unwrap();
    let node = s.signature().lookup("node").unwrap();
    let first = s.signature().lookup("first").unwrap();
    for i in 0..n {
        s.insert(node, &[ElemId(i as u32)]);
    }
    for i in 0..n - 1 {
        s.insert(e, &[ElemId(i as u32), ElemId(i as u32 + 1)]);
    }
    // A self-loop so containment tests with `e(X, X)` bodies have
    // matching data, and a back edge so symmetric closures differ from
    // plain closures.
    s.insert(e, &[ElemId(2), ElemId(2)]);
    s.insert(e, &[ElemId(4), ElemId(1)]);
    s.insert(first, &[ElemId(0)]);
    s
}

/// One random rule for head predicate `q<head>`. Negation and positive
/// IDB dependencies only target strictly lower-numbered predicates, so
/// every generated program is safe and stratified by construction
/// (self-recursion is positive).
fn render_rule(head: usize, kind: u8, dep: usize) -> String {
    let h = format!("q{head}");
    let d = format!("q{}", if head == 0 { 0 } else { dep % head });
    match kind % 7 {
        0 => format!("{h}(X) :- node(X)."),
        1 => format!("{h}(X) :- first(X)."),
        2 => format!("{h}(X) :- e(X, Y), node(Y)."),
        3 if head > 0 => format!("{h}(X) :- node(X), {d}(X)."),
        4 if head > 0 => format!("{h}(X) :- node(X), !{d}(X)."),
        5 if head > 0 => format!("{h}(Y) :- {d}(X), e(X, Y)."),
        _ => format!("{h}(Y) :- {h}(X), e(X, Y)."),
    }
}

/// Random programs as source text plus a nonempty output set.
fn arb_program() -> impl Strategy<Value = (String, Vec<String>)> {
    (1usize..=5).prop_flat_map(|npreds| {
        let rules = proptest::collection::vec((0..npreds, 0u8..7, 0usize..8), npreds..=3 * npreds);
        let mask = proptest::collection::vec(0u8..2, npreds);
        (rules, mask).prop_map(move |(rules, mask)| {
            let source: Vec<String> = rules
                .iter()
                .map(|&(head, kind, dep)| render_rule(head, kind, dep))
                .collect();
            let mut outputs: Vec<String> = (0..npreds)
                .filter(|&i| mask[i] == 1)
                .map(|i| format!("q{i}"))
                .collect();
            if outputs.is_empty() {
                outputs.push("q0".into());
            }
            (source.join("\n"), outputs)
        })
    })
}

/// Evaluates `source` twice — once plain, once with `transformed` options
/// — and asserts every output relation is bit-identical.
fn assert_store_identical(source: &str, outputs: &[String], transformed: EvalOptions) {
    let s = chain(9);
    let program = parse_program(source, &s).expect("generated programs parse");
    let mut plain = Evaluator::with_options(
        program.clone(),
        EvalOptions::new().outputs(outputs.iter().cloned()),
    )
    .expect("generated programs stratify");
    let mut opt = Evaluator::with_options(program, transformed.outputs(outputs.iter().cloned()))
        .expect("transforms preserve stratifiability");

    let a = plain.evaluate(&s).unwrap();
    let b = opt.evaluate(&s).unwrap();
    for name in outputs {
        let (Some(pa), Some(pb)) = (plain.program().idb(name), opt.program().idb(name)) else {
            continue;
        };
        assert_eq!(
            a.store.tuples(pa),
            b.store.tuples(pb),
            "output {} differs under {:?}\n{}",
            name,
            opt.transforms(),
            source
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn minimized_evaluation_matches_plain_on_outputs((source, outputs) in arb_program()) {
        assert_store_identical(&source, &outputs, EvalOptions::new().minimize(true));
    }

    #[test]
    fn bounded_elimination_matches_plain_on_outputs((source, outputs) in arb_program()) {
        assert_store_identical(
            &source,
            &outputs,
            EvalOptions::new().eliminate_bounded_recursion(true),
        );
    }

    #[test]
    fn magic_evaluation_matches_plain_on_outputs((source, outputs) in arb_program()) {
        assert_store_identical(&source, &outputs, EvalOptions::new().magic_sets(true));
    }
}

#[test]
fn bounded_tc_fixture_is_rewritten_nonrecursive() {
    // The checked-in fixture: a symmetric closure (provably bounded at
    // stage 2) plus a semantically redundant third rule.
    let src = include_str!("../fixtures/bounded_tc.dl");
    let s = chain(11);
    let program = parse_program(src, &s).unwrap();

    let mut plain =
        Evaluator::with_options(program.clone(), EvalOptions::new().outputs(["q"])).unwrap();
    let mut opt = Evaluator::with_options(
        program,
        EvalOptions::new()
            .outputs(["q"])
            .minimize(true)
            .eliminate_bounded_recursion(true),
    )
    .unwrap();

    // The recursion is *gone*, not just reorganized: one stratum, zero
    // recursive SCCs, and the redundant rule was removed first.
    assert_eq!(opt.transforms().bounded_sccs, 1);
    assert_eq!(opt.transforms().removed_rules, 1);
    assert_eq!(opt.stratification().stratum_count(), 1);
    assert_eq!(recursive_idb_scc_count(opt.program()), 0);

    let a = plain.evaluate(&s).unwrap();
    let b = opt.evaluate(&s).unwrap();
    let qa = plain.program().idb("q").unwrap();
    let qb = opt.program().idb("q").unwrap();
    assert_eq!(a.store.tuples(qa), b.store.tuples(qb));
    assert!(!a.store.tuples(qa).is_empty(), "the closure derives facts");
    // The symmetric closure genuinely adds reversed edges, so the
    // nonrecursive replacement did real work.
    assert!(a.store.tuples(qa).len() > 5);
}

#[test]
fn fixture_diagnostics_name_the_transforms() {
    // The same fixture through the lint pipeline: the semantic tier
    // flags both the contained rule and the bounded component.
    let outcome = mdtw_datalog::lint::lint_source(include_str!("../fixtures/bounded_tc.dl"))
        .expect("pragmas are well-formed");
    let report = outcome.report.expect("parses");
    assert!(!report.has_errors());
    let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
    assert!(
        codes.contains(&LintCode::SemanticallySubsumedRule),
        "{codes:?}"
    );
    assert!(codes.contains(&LintCode::ProvablyBoundedScc), "{codes:?}");

    let outcome = mdtw_datalog::lint::lint_source(include_str!("../fixtures/point_query.dl"))
        .expect("pragmas are well-formed");
    let report = outcome.report.expect("parses");
    assert!(!report.has_errors());
    assert_eq!(report.warning_count(), 0, "{:#?}", report.diagnostics);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::MagicApplicable),
        "{:#?}",
        report.diagnostics
    );
}
