//! Property test: the three evaluation engines — naive (the executable
//! minimal-model definition), the pre-index scan engine (kept as oracle),
//! and the indexed semi-naive engine — compute identical least fixpoints
//! and identical distinct-fact counts on randomly generated semipositive
//! programs over randomly generated structures.
//!
//! This is the **legacy-oracle suite**: it deliberately keeps calling the
//! deprecated `eval_*` one-shot wrappers so the `Evaluator` session API
//! can be pinned bit-identical to them — every [`Engine`] variant of a
//! *reused* session (cache cold and warm) must agree with the
//! corresponding free function on the same random matrix.
#![allow(deprecated)]

use mdtw_datalog::{
    eval_naive, eval_seminaive, eval_seminaive_scan, Atom, Engine, EvalOptions, Evaluator, IdbId,
    Literal, PredRef, Program, Rule, Term, Var,
};
use mdtw_structure::{Domain, ElemId, PredId, Signature, Structure};
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;

/// Raw material for one body literal: `(kind, arg, arg)`.
type RawLit = (u8, u8, u8);
/// Raw material for one rule:
/// `(head pick, (head arg, head arg), positive body, negative pick)`.
type RawRule = (u8, (u8, u8), Vec<RawLit>, RawLit);

const NVARS: u8 = 3;

fn build_structure(n: usize, edges: &[(u8, u8)], marks: &[u8]) -> Structure {
    let sig = Arc::new(Signature::from_pairs([("e", 2), ("m", 1)]));
    let dom = Domain::anonymous(n);
    let mut s = Structure::new(sig, dom);
    let e = s.signature().lookup("e").unwrap();
    let m = s.signature().lookup("m").unwrap();
    for &(a, b) in edges {
        s.insert(
            e,
            &[ElemId(a as u32 % n as u32), ElemId(b as u32 % n as u32)],
        );
    }
    for &a in marks {
        s.insert(m, &[ElemId(a as u32 % n as u32)]);
    }
    s
}

fn var(i: u8) -> Term {
    Term::Var(Var((i % NVARS) as u32))
}

/// Builds a positive body literal from raw ints. Kinds: e/2, m/1, q0/1,
/// q1/2 (IDB ids 0 and 1).
fn positive_literal(raw: RawLit, e: PredId, m: PredId) -> Literal {
    let (kind, a, b) = raw;
    let atom = match kind % 4 {
        0 => Atom {
            pred: PredRef::Edb(e),
            terms: vec![var(a), var(b)],
        },
        1 => Atom {
            pred: PredRef::Edb(m),
            terms: vec![var(a)],
        },
        2 => Atom {
            pred: PredRef::Idb(IdbId(0)),
            terms: vec![var(a)],
        },
        _ => Atom {
            pred: PredRef::Idb(IdbId(1)),
            terms: vec![var(a), var(b)],
        },
    };
    Literal {
        atom,
        positive: true,
    }
}

/// Builds a random but always-safe semipositive program: head variables
/// and negative-literal variables are drawn from the variables of the
/// positive body (never empty: the generator emits 1–3 positive literals,
/// each with at least one variable), so `Rule::is_safe` holds by
/// construction.
fn build_program(raw_rules: &[RawRule], structure: &Structure) -> Program {
    let e = structure.signature().lookup("e").unwrap();
    let m = structure.signature().lookup("m").unwrap();
    let mut program = Program::default();
    program.intern_idb("q0", 1).unwrap();
    program.intern_idb("q1", 2).unwrap();

    for (head_pick, (h1, h2), body_raw, neg_raw) in raw_rules {
        let body: Vec<Literal> = body_raw
            .iter()
            .map(|&raw| positive_literal(raw, e, m))
            .collect();
        let mut pos_vars: Vec<Var> = body
            .iter()
            .flat_map(|l| l.atom.vars().collect::<Vec<_>>())
            .collect();
        pos_vars.sort();
        pos_vars.dedup();
        debug_assert!(!pos_vars.is_empty(), "every positive literal has a var");
        let pick = |sel: u8| Term::Var(pos_vars[sel as usize % pos_vars.len()]);

        let head = if head_pick % 2 == 0 {
            Atom {
                pred: PredRef::Idb(IdbId(0)),
                terms: vec![pick(*h1)],
            }
        } else {
            Atom {
                pred: PredRef::Idb(IdbId(1)),
                terms: vec![pick(*h1), pick(*h2)],
            }
        };

        let mut body = body;
        let (nkind, na, nb) = *neg_raw;
        // Negation only on EDB atoms (semipositive fragment), with
        // variables from the positive body (safety).
        match nkind % 3 {
            0 => {}
            1 => body.push(Literal {
                atom: Atom {
                    pred: PredRef::Edb(e),
                    terms: vec![pick(na), pick(nb)],
                },
                positive: false,
            }),
            _ => body.push(Literal {
                atom: Atom {
                    pred: PredRef::Edb(m),
                    terms: vec![pick(na)],
                },
                positive: false,
            }),
        }

        let rule = Rule {
            head,
            body,
            var_count: NVARS as u32,
            var_names: vec!["X".into(), "Y".into(), "Z".into()],
        };
        assert!(rule.is_safe(), "generator must only build safe rules");
        program.rules.push(rule);
    }
    program
        .check_semipositive()
        .expect("generator must only build semipositive programs");
    program
}

/// Deterministic pin of indexed-vs-scan-vs-naive agreement on a program
/// whose joins carry multi-position index keys over a ternary relation:
/// the recursive rule binds two of `t`'s argument positions before the
/// probe, and the projection rule probes `t` on all three. Exercises the
/// packed multi-`ElemId` key path of [`mdtw_structure::PosIndex`], which
/// the random generator above (arities ≤ 2) cannot reach.
#[test]
fn multi_position_keys_agree_across_engines_arity_3() {
    use mdtw_datalog::parse_program;

    let sig = Arc::new(Signature::from_pairs([("t", 3)]));
    let n = 9u32;
    let dom = Domain::anonymous(n as usize);
    let mut s = Structure::new(sig, dom);
    let t = s.signature().lookup("t").unwrap();
    for i in 0..n {
        s.insert(t, &[ElemId(i), ElemId((i + 1) % n), ElemId((i + 2) % n)]);
        s.insert(t, &[ElemId(i), ElemId(i), ElemId((i * i) % n)]);
    }
    let p = parse_program(
        "tri(X, Y, Z) :- t(X, Y, Z).\n\
         tri(X, W, Z) :- tri(X, Y, W), t(Y, W, Z).\n\
         pin(X, Z) :- tri(X, Y, Z), t(X, Y, Z).",
        &s,
    )
    .unwrap();

    let (naive, naive_stats) = eval_naive(&p, &s).unwrap();
    let (scan, scan_stats) = eval_seminaive_scan(&p, &s).unwrap();
    let (indexed, indexed_stats) = eval_seminaive(&p, &s).unwrap();

    for name in ["tri", "pin"] {
        let id = p.idb(name).unwrap();
        assert!(!naive.tuples(id).is_empty(), "{name} must derive facts");
        assert_eq!(naive.tuples(id), scan.tuples(id), "scan vs naive: {name}");
        assert_eq!(
            naive.tuples(id),
            indexed.tuples(id),
            "indexed vs naive: {name}"
        );
    }
    assert_eq!(naive_stats.facts, scan_stats.facts);
    assert_eq!(naive_stats.facts, indexed_stats.facts);
    assert!(indexed_stats.firings <= scan_stats.firings);
    assert!(
        indexed_stats.index_probes > 0,
        "multi-position joins must probe, not scan"
    );

    // All three engines now populate the work counters, so their access
    // patterns are directly comparable: the scan engines enumerate whole
    // relations where the indexed engine probes.
    for (label, st) in [("naive", &naive_stats), ("scan", &scan_stats)] {
        assert!(st.full_scans > 0, "{label} engine counts its scans");
        assert!(
            st.tuples_considered > 0,
            "{label} engine counts candidate tuples"
        );
        assert_eq!(st.index_probes, 0, "{label} engine never probes");
    }
    assert!(indexed_stats.tuples_considered > 0);
    assert!(
        indexed_stats.tuples_considered < scan_stats.tuples_considered,
        "probing must consider strictly fewer candidates than scanning"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    #[test]
    fn engines_compute_identical_fixpoints(
        n in 2usize..6,
        edges in vec((0u8..8, 0u8..8), 0..10),
        marks in vec(0u8..8, 0..4),
        raw_rules in vec(
            (
                0u8..4,
                (0u8..8, 0u8..8),
                vec((0u8..8, 0u8..8, 0u8..8), 1..4),
                (0u8..6, 0u8..8, 0u8..8),
            ),
            1..5,
        ),
    ) {
        let s = build_structure(n, &edges, &marks);
        let p = build_program(&raw_rules, &s);
        let (naive, naive_stats) = eval_naive(&p, &s).unwrap();
        let (scan, scan_stats) = eval_seminaive_scan(&p, &s).unwrap();
        let (indexed, indexed_stats) = eval_seminaive(&p, &s).unwrap();

        for idb in 0..p.idb_count() {
            let id = IdbId(idb as u32);
            prop_assert_eq!(naive.tuples(id), scan.tuples(id), "scan vs naive, idb {}", idb);
            prop_assert_eq!(naive.tuples(id), indexed.tuples(id), "indexed vs naive, idb {}", idb);
        }
        prop_assert_eq!(naive.fact_count(), indexed.fact_count());
        prop_assert_eq!(naive_stats.facts, scan_stats.facts);
        prop_assert_eq!(naive_stats.facts, indexed_stats.facts);
        // The rule split may only save work, never add it.
        prop_assert!(indexed_stats.firings <= scan_stats.firings);
    }

    /// The same random program/structure matrix through every semipositive
    /// `Engine` variant of ONE reused `Evaluator` each — cache cold
    /// (first call) *and* warm (second call) — asserting bit-identical
    /// `IdbStore`s against the corresponding legacy free function, and
    /// pinning that a reused indexed session's second evaluation reports
    /// `plan_cache_hits > 0`. (`Engine::QuasiGuarded` needs declared
    /// functional dependencies the random matrix does not have; its
    /// deterministic equivalence pin is `quasi_guarded_session_matches`
    /// below.)
    #[test]
    fn evaluator_sessions_bit_identical_to_free_functions(
        n in 2usize..6,
        edges in vec((0u8..8, 0u8..8), 0..10),
        marks in vec(0u8..8, 0..4),
        raw_rules in vec(
            (
                0u8..4,
                (0u8..8, 0u8..8),
                vec((0u8..8, 0u8..8, 0u8..8), 1..4),
                (0u8..6, 0u8..8, 0u8..8),
            ),
            1..5,
        ),
    ) {
        let s = build_structure(n, &edges, &marks);
        let p = build_program(&raw_rules, &s);
        type FreeFn = fn(
            &Program,
            &Structure,
        ) -> Result<
            (mdtw_datalog::IdbStore, mdtw_datalog::EvalStats),
            mdtw_datalog::EvalError,
        >;
        let legacy: [(Engine, FreeFn); 3] = [
            (Engine::Naive, eval_naive),
            (Engine::SemiNaiveScan, eval_seminaive_scan),
            (Engine::SemiNaiveIndexed, eval_seminaive),
        ];
        for (engine, free_fn) in legacy {
            let (free_store, free_stats) = free_fn(&p, &s).unwrap();
            let mut session =
                Evaluator::with_options(p.clone(), EvalOptions::new().engine(engine)).unwrap();
            let cold = session.evaluate(&s).unwrap();
            let warm = session.evaluate(&s).unwrap();
            for idb in 0..p.idb_count() {
                let id = IdbId(idb as u32);
                prop_assert_eq!(
                    free_store.tuples(id), cold.store.tuples(id),
                    "{} cold vs free fn, idb {}", engine, idb
                );
                prop_assert_eq!(
                    free_store.tuples(id), warm.store.tuples(id),
                    "{} warm vs free fn, idb {}", engine, idb
                );
            }
            prop_assert_eq!(free_stats.facts, cold.stats.facts, "{}", engine);
            prop_assert_eq!(free_stats.facts, warm.stats.facts, "{}", engine);
            prop_assert_eq!(free_stats.firings, cold.stats.firings, "{}", engine);
            prop_assert_eq!(free_stats.firings, warm.stats.firings, "{}", engine);
            if engine == Engine::SemiNaiveIndexed {
                prop_assert_eq!(cold.stats.plan_cache_hits, 0, "session cache starts cold");
                prop_assert!(
                    warm.stats.plan_cache_hits > 0,
                    "reused session must reuse compiled plans"
                );
            }
        }
    }
}

/// Deterministic `Engine::QuasiGuarded` leg of the session-vs-free-function
/// matrix: the random generator cannot produce quasi-guarded programs (it
/// declares no functional dependencies), so the equivalence is pinned on
/// the chain-reachability workload of Theorem 4.4, cache cold and warm.
#[test]
fn quasi_guarded_session_matches_free_function() {
    use mdtw_datalog::{eval_quasi_guarded, parse_program, FdCatalog};

    let sig = Arc::new(Signature::from_pairs([("next", 2), ("first", 1)]));
    let n = 40usize;
    let dom = Domain::anonymous(n);
    let mut s = Structure::new(sig, dom);
    let next = s.signature().lookup("next").unwrap();
    let first = s.signature().lookup("first").unwrap();
    s.insert(first, &[ElemId(0)]);
    for i in 0..n - 1 {
        s.insert(next, &[ElemId(i as u32), ElemId(i as u32 + 1)]);
    }
    let p = parse_program(
        "reach(X) :- first(X).\nreach(Y) :- reach(X), next(X, Y).\n\
         inner(X) :- reach(X), next(X, Y), !first(X).",
        &s,
    )
    .unwrap();
    let mut catalog = FdCatalog::new();
    catalog.declare(next, vec![0], vec![1]);
    catalog.declare(next, vec![1], vec![0]);

    let (free_store, free_qg) = eval_quasi_guarded(&p, &s, &catalog).unwrap();
    let mut session =
        Evaluator::with_options(p.clone(), EvalOptions::new().fd_catalog(catalog)).unwrap();
    assert_eq!(session.engine(), Engine::QuasiGuarded);
    let cold = session.evaluate(&s).unwrap();
    let warm = session.evaluate(&s).unwrap();
    for name in ["reach", "inner"] {
        let id = p.idb(name).unwrap();
        assert_eq!(free_store.tuples(id), cold.store.tuples(id), "{name} cold");
        assert_eq!(free_store.tuples(id), warm.store.tuples(id), "{name} warm");
    }
    for r in [&cold, &warm] {
        let qg = r.qg.expect("quasi-guarded sessions report QgStats");
        assert_eq!(qg.ground_rules, free_qg.ground_rules);
        assert_eq!(qg.ground_atoms, free_qg.ground_atoms);
    }
}
