//! Observability-layer pins: profiling must *observe* evaluation, never
//! change it.
//!
//! * Property test (96 random semipositive programs × structures ×
//!   engines): every [`ProfileDetail`] level produces a store and
//!   [`EvalStats`] bit-identical to `ProfileDetail::Off`.
//! * Fixture pins on the 3-stratum negation chain: per-rule firing
//!   counts in the profile sum to `EvalStats::firings`, every positive
//!   literal of every fired rule carries a selectivity observation, and
//!   the profile round-trips through the JSON export.
//! * A tripped budget still yields a profile, names the tripping stratum
//!   in its `Display`, and serializes it in the JSON error shape.

use mdtw_datalog::{
    eval_error_json, parse_program, Atom, Engine, EvalError, EvalLimits, EvalOptions, EvalProfile,
    Evaluator, IdbId, Literal, PredRef, ProfileDetail, Program, Rule, Term, Var,
};
use mdtw_structure::{Domain, ElemId, PredId, Signature, Structure};
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;

/// Raw material for one body literal: `(kind, arg, arg)`.
type RawLit = (u8, u8, u8);
/// Raw material for one rule:
/// `(head pick, (head arg, head arg), positive body, negative pick)`.
type RawRule = (u8, (u8, u8), Vec<RawLit>, RawLit);

const NVARS: u8 = 3;

fn build_structure(n: usize, edges: &[(u8, u8)], marks: &[u8]) -> Structure {
    let sig = Arc::new(Signature::from_pairs([("e", 2), ("m", 1)]));
    let dom = Domain::anonymous(n);
    let mut s = Structure::new(sig, dom);
    let e = s.signature().lookup("e").unwrap();
    let m = s.signature().lookup("m").unwrap();
    for &(a, b) in edges {
        s.insert(
            e,
            &[ElemId(a as u32 % n as u32), ElemId(b as u32 % n as u32)],
        );
    }
    for &a in marks {
        s.insert(m, &[ElemId(a as u32 % n as u32)]);
    }
    s
}

fn var(i: u8) -> Term {
    Term::Var(Var((i % NVARS) as u32))
}

/// Builds a positive body literal from raw ints. Kinds: e/2, m/1, q0/1,
/// q1/2 (IDB ids 0 and 1).
fn positive_literal(raw: RawLit, e: PredId, m: PredId) -> Literal {
    let (kind, a, b) = raw;
    let atom = match kind % 4 {
        0 => Atom {
            pred: PredRef::Edb(e),
            terms: vec![var(a), var(b)],
        },
        1 => Atom {
            pred: PredRef::Edb(m),
            terms: vec![var(a)],
        },
        2 => Atom {
            pred: PredRef::Idb(IdbId(0)),
            terms: vec![var(a)],
        },
        _ => Atom {
            pred: PredRef::Idb(IdbId(1)),
            terms: vec![var(a), var(b)],
        },
    };
    Literal {
        atom,
        positive: true,
    }
}

/// Builds a random but always-safe semipositive program (same generator
/// family as the engine-equivalence suite): head variables and
/// negative-literal variables are drawn from the positive body.
fn build_program(raw_rules: &[RawRule], structure: &Structure) -> Program {
    let e = structure.signature().lookup("e").unwrap();
    let m = structure.signature().lookup("m").unwrap();
    let mut program = Program::default();
    program.intern_idb("q0", 1).unwrap();
    program.intern_idb("q1", 2).unwrap();

    for (head_pick, (h1, h2), body_raw, neg_raw) in raw_rules {
        let body: Vec<Literal> = body_raw
            .iter()
            .map(|&raw| positive_literal(raw, e, m))
            .collect();
        let mut pos_vars: Vec<Var> = body
            .iter()
            .flat_map(|l| l.atom.vars().collect::<Vec<_>>())
            .collect();
        pos_vars.sort();
        pos_vars.dedup();
        let pick = |sel: u8| Term::Var(pos_vars[sel as usize % pos_vars.len()]);

        let head = if head_pick % 2 == 0 {
            Atom {
                pred: PredRef::Idb(IdbId(0)),
                terms: vec![pick(*h1)],
            }
        } else {
            Atom {
                pred: PredRef::Idb(IdbId(1)),
                terms: vec![pick(*h1), pick(*h2)],
            }
        };

        let mut body = body;
        let (nkind, na, nb) = *neg_raw;
        match nkind % 3 {
            0 => {}
            1 => body.push(Literal {
                atom: Atom {
                    pred: PredRef::Edb(e),
                    terms: vec![pick(na), pick(nb)],
                },
                positive: false,
            }),
            _ => body.push(Literal {
                atom: Atom {
                    pred: PredRef::Edb(m),
                    terms: vec![pick(na)],
                },
                positive: false,
            }),
        }

        let rule = Rule {
            head,
            body,
            var_count: NVARS as u32,
            var_names: vec!["X".into(), "Y".into(), "Z".into()],
        };
        assert!(rule.is_safe(), "generator must only build safe rules");
        program.rules.push(rule);
    }
    program
        .check_semipositive()
        .expect("generator must only build semipositive programs");
    program
}

/// The 3-stratum negation chain (the `stratified_reach` bench workload).
const STRATIFIED_PROGRAM: &str = "reach(X) :- first(X).\nreach(Y) :- reach(X), e(X, Y).\n\
     unreach(X) :- node(X), !reach(X).\n\
     settled(X) :- node(X), !unreach(X), !first(X).";

fn stratified_fixture(n: usize) -> (Structure, Program) {
    let sig = Arc::new(Signature::from_pairs([("e", 2), ("node", 1), ("first", 1)]));
    let dom = Domain::anonymous(n);
    let mut s = Structure::new(sig, dom);
    let e = s.signature().lookup("e").unwrap();
    let node = s.signature().lookup("node").unwrap();
    let first = s.signature().lookup("first").unwrap();
    for i in 0..n {
        s.insert(node, &[ElemId(i as u32)]);
    }
    for i in 0..n - 1 {
        s.insert(e, &[ElemId(i as u32), ElemId(i as u32 + 1)]);
    }
    s.insert(first, &[ElemId(n as u32 / 2)]);
    let p = parse_program(STRATIFIED_PROGRAM, &s).unwrap();
    (s, p)
}

fn evaluate_at(
    program: &Program,
    structure: &Structure,
    engine: Engine,
    detail: ProfileDetail,
) -> mdtw_datalog::EvalResult {
    let mut session = Evaluator::with_options(
        program.clone(),
        EvalOptions::new().engine(engine).profile(detail),
    )
    .expect("semipositive program");
    session.evaluate(structure).expect("no limits, cannot trip")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Profiling is observation only: for every engine and every
    /// `ProfileDetail` level, the store and the work counters are
    /// bit-identical to a `ProfileDetail::Off` evaluation.
    #[test]
    fn profiling_never_changes_store_or_stats(
        n in 2usize..6,
        edges in vec((0u8..8, 0u8..8), 0..10),
        marks in vec(0u8..8, 0..4),
        raw_rules in vec(
            (
                0u8..4,
                (0u8..8, 0u8..8),
                vec((0u8..8, 0u8..8, 0u8..8), 1..4),
                (0u8..6, 0u8..8, 0u8..8),
            ),
            1..5,
        ),
    ) {
        let s = build_structure(n, &edges, &marks);
        let p = build_program(&raw_rules, &s);
        for engine in [Engine::Naive, Engine::SemiNaiveScan, Engine::SemiNaiveIndexed] {
            let off = evaluate_at(&p, &s, engine, ProfileDetail::Off);
            prop_assert!(off.profile.is_none(), "Off must not allocate a profile");
            for detail in [ProfileDetail::Strata, ProfileDetail::Rules, ProfileDetail::Literals] {
                let on = evaluate_at(&p, &s, engine, detail);
                for idb in 0..p.idb_count() {
                    let id = IdbId(idb as u32);
                    prop_assert_eq!(
                        off.store.tuples(id),
                        on.store.tuples(id),
                        "store must be bit-identical ({:?}, {:?}, idb {})",
                        engine,
                        detail,
                        idb
                    );
                }
                prop_assert_eq!(off.store.fact_count(), on.store.fact_count());
                prop_assert_eq!(
                    off.stats,
                    on.stats,
                    "stats must be bit-identical ({:?}, {:?})",
                    engine,
                    detail
                );
                let profile = on.profile.expect("profiling enabled");
                prop_assert_eq!(profile.detail, detail);
                prop_assert!(profile.trip_stratum.is_none());
            }
        }
    }
}

#[test]
fn per_rule_firings_sum_to_eval_stats() {
    let (s, p) = stratified_fixture(24);
    let result = evaluate_at(&p, &s, Engine::SemiNaiveIndexed, ProfileDetail::Rules);
    let profile = result.profile.expect("profiling enabled");
    assert_eq!(profile.strata.len(), result.stats.strata);
    assert_eq!(profile.strata.len(), 3, "the fixture has three strata");

    let firings: usize = profile
        .strata
        .iter()
        .flat_map(|st| st.rules.iter())
        .map(|r| r.firings)
        .sum();
    assert_eq!(firings, result.stats.firings);
    let tuples: usize = profile
        .strata
        .iter()
        .flat_map(|st| st.rules.iter())
        .map(|r| r.tuples_considered)
        .sum();
    assert_eq!(tuples, result.stats.tuples_considered);
    let facts: usize = profile.strata.iter().map(|st| st.facts).sum();
    assert_eq!(facts, result.stats.facts);

    // Per-rule attribution is real: every fixture head shows up, and the
    // recursive reach rule accounts for all rounds past the first.
    let mut heads: Vec<&str> = profile
        .strata
        .iter()
        .flat_map(|st| st.rules.iter())
        .filter(|r| r.firings > 0)
        .map(|r| r.head.as_str())
        .collect();
    heads.sort_unstable();
    heads.dedup();
    assert_eq!(heads, ["reach", "settled", "unreach"]);
    let recursive = profile.strata[0]
        .rules
        .iter()
        .find(|r| r.rule == 1)
        .expect("recursive reach rule profiled");
    assert!(recursive.firings >= 11, "chain half must be derived");
}

#[test]
fn literal_detail_observes_every_positive_literal_of_fired_rules() {
    let (s, p) = stratified_fixture(24);
    let result = evaluate_at(&p, &s, Engine::SemiNaiveIndexed, ProfileDetail::Literals);
    let profile = result.profile.expect("profiling enabled");

    let mut observed_rules = 0usize;
    for stratum in &profile.strata {
        for rp in &stratum.rules {
            if rp.firings == 0 {
                continue;
            }
            observed_rules += 1;
            let positives: Vec<usize> = p.rules[rp.rule]
                .body
                .iter()
                .enumerate()
                .filter(|(_, l)| l.positive)
                .map(|(i, _)| i)
                .collect();
            let recorded: Vec<usize> = rp.literals.iter().map(|l| l.literal).collect();
            assert_eq!(
                recorded, positives,
                "rule {} must carry one observation per positive body literal",
                rp.rule
            );
            for lit in &rp.literals {
                assert!(
                    lit.tuples_in >= lit.tuples_out,
                    "selectivity cannot exceed 1 (rule {}, literal {})",
                    rp.rule,
                    lit.literal
                );
            }
            // A fired rule's first join position enumerated candidates.
            assert!(rp.literals[0].tuples_in > 0);
        }
    }
    assert_eq!(observed_rules, 4, "all four fixture rules fire");
}

#[test]
fn profiles_round_trip_through_json() {
    let (s, p) = stratified_fixture(12);
    for detail in [
        ProfileDetail::Strata,
        ProfileDetail::Rules,
        ProfileDetail::Literals,
    ] {
        let result = evaluate_at(&p, &s, Engine::SemiNaiveIndexed, detail);
        let profile = result.profile.expect("profiling enabled");
        let json = profile.to_json();
        let rendered = json.render();
        let reparsed = mdtw_datalog::lint::json::parse(&rendered).expect("rendered JSON parses");
        let back = EvalProfile::from_json(&reparsed).expect("profile deserializes");
        assert_eq!(*profile, back, "lossless round-trip at {detail:?}");
    }
}

#[test]
fn tripped_budget_reports_stratum_in_display_profile_and_json() {
    let (s, p) = stratified_fixture(64);
    let mut session = Evaluator::with_options(
        p,
        EvalOptions::new()
            .profile(ProfileDetail::Rules)
            .limits(EvalLimits::new().fuel(40)),
    )
    .expect("stratifiable");
    let err = session.evaluate(&s).expect_err("a 40-unit budget trips");
    let EvalError::LimitExceeded {
        kind,
        stats,
        partial,
    } = err
    else {
        panic!("expected LimitExceeded");
    };
    let rebuilt = EvalError::LimitExceeded {
        kind,
        stats,
        partial: None,
    };
    let message = rebuilt.to_string();
    assert!(
        message.contains("in stratum"),
        "Display must name the tripping stratum: {message}"
    );

    let json = eval_error_json(&rebuilt).render();
    assert!(json.contains("\"error\":\"limit_exceeded\""), "{json}");
    assert!(json.contains("\"stratum\""), "{json}");

    let partial = partial.expect("trip keeps the partial result");
    let profile = partial.profile.expect("trip keeps the profile");
    let trip = profile.trip_stratum.expect("profile marks the trip");
    assert_eq!(
        trip, stats.strata,
        "the tripping stratum is the one after the completed count"
    );
}
