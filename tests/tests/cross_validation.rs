//! Cross-validation of every solver against every baseline on randomized
//! inputs: the FPT algorithms, the exact exponential algorithms, the MSO
//! model checker, the tree-automaton route and the ground monadic
//! program must all agree.

use mdtw_core::{ground_three_col, prime_attributes_fpt, ThreeColSolver};
use mdtw_decomp::{NiceOptions, NiceTd};
use mdtw_fta::nfta_3col;
use mdtw_graph::{encode_graph, is_three_colorable_exact, partial_k_tree};
use mdtw_mso::{eval_sentence, three_colorability, Budget};
use mdtw_schema::{random_schema, seeded_rng};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn three_col_all_engines_agree_on_random_partial_k_trees() {
    let mut rng = SmallRng::seed_from_u64(101);
    for i in 0..20 {
        let n = 10 + i;
        let k = 2 + (i % 3);
        let (g, td) = partial_k_tree(&mut rng, n, k, 0.75);
        let nice = NiceTd::from_td(&td, NiceOptions::default());
        let expected = is_three_colorable_exact(&g);
        assert_eq!(
            ThreeColSolver::run(&g, &nice).is_colorable(),
            expected,
            "DP, instance {i}"
        );
        assert_eq!(nfta_3col(&g, &nice), expected, "NFTA, instance {i}");
        assert_eq!(
            ground_three_col(&g, &nice).succeeds(),
            expected,
            "ground program, instance {i}"
        );
    }
}

#[test]
fn three_col_mso_sentence_agrees_on_tiny_graphs() {
    // The naive MSO checker is exponential; keep |V| ≤ 7.
    let mut rng = SmallRng::seed_from_u64(55);
    for i in 0..8 {
        let (g, td) = partial_k_tree(&mut rng, 5 + i % 3, 2, 0.6);
        let nice = NiceTd::from_td(&td, NiceOptions::default());
        let s = encode_graph(&g);
        let via_mso = eval_sentence(&three_colorability(), &s, &mut Budget::unlimited()).unwrap();
        let via_dp = ThreeColSolver::run(&g, &nice).is_colorable();
        assert_eq!(via_mso, via_dp, "instance {i}");
    }
}

#[test]
fn primality_enumeration_agrees_with_exact_on_random_schemas() {
    let mut rng = seeded_rng(2027);
    for i in 0..30 {
        let n_attrs = 4 + i % 4;
        let n_fds = 2 + i % 4;
        let schema = random_schema(&mut rng, n_attrs, n_fds, 3);
        let fpt = prime_attributes_fpt(&schema);
        let exact = schema.prime_attributes_exact();
        assert_eq!(fpt, exact, "instance {i}: {schema}");
        // Brute force agrees too (tiny schemas).
        for attr in schema.attrs() {
            assert_eq!(
                fpt.contains(&attr),
                schema.is_prime_bruteforce(attr),
                "instance {i}, attribute {attr:?}"
            );
        }
    }
}

#[test]
fn witnesses_are_always_proper() {
    let mut rng = SmallRng::seed_from_u64(606);
    for i in 0..10 {
        let (g, td) = partial_k_tree(&mut rng, 25 + i, 3, 0.8);
        let nice = NiceTd::from_td(&td, NiceOptions::default());
        let solver = ThreeColSolver::run(&g, &nice);
        if let Some(colors) = solver.witness() {
            assert!(mdtw_graph::is_proper_coloring(&g, &colors, 3));
        } else {
            assert!(!solver.is_colorable());
            assert!(!is_three_colorable_exact(&g));
        }
    }
}
