//! Dead-rule pruning must be invisible: for any program and any declared
//! outputs, an `Evaluator` with `prune_dead_rules(true)` derives exactly
//! the same facts for every output predicate (and everything an output
//! transitively depends on) as the unpruned session.

use mdtw_datalog::{parse_program, EvalOptions, Evaluator};
use mdtw_structure::{Domain, ElemId, Signature, Structure};
use proptest::prelude::*;
use std::sync::Arc;

fn chain(n: usize) -> Structure {
    let sig = Arc::new(Signature::from_pairs([("e", 2), ("node", 1), ("first", 1)]));
    let mut s = Structure::new(sig, Domain::anonymous(n));
    let e = s.signature().lookup("e").unwrap();
    let node = s.signature().lookup("node").unwrap();
    let first = s.signature().lookup("first").unwrap();
    for i in 0..n {
        s.insert(node, &[ElemId(i as u32)]);
    }
    for i in 0..n - 1 {
        s.insert(e, &[ElemId(i as u32), ElemId(i as u32 + 1)]);
    }
    s.insert(first, &[ElemId(0)]);
    s
}

/// One random rule for head predicate `q<head>`. Negation and positive
/// IDB dependencies only target strictly lower-numbered predicates, so
/// every generated program is safe and stratified by construction
/// (self-recursion is positive).
fn render_rule(head: usize, kind: u8, dep: usize) -> String {
    let h = format!("q{head}");
    let d = format!("q{}", if head == 0 { 0 } else { dep % head });
    match kind % 7 {
        0 => format!("{h}(X) :- node(X)."),
        1 => format!("{h}(X) :- first(X)."),
        2 => format!("{h}(X) :- e(X, Y), node(Y)."),
        3 if head > 0 => format!("{h}(X) :- node(X), {d}(X)."),
        4 if head > 0 => format!("{h}(X) :- node(X), !{d}(X)."),
        5 if head > 0 => format!("{h}(Y) :- {d}(X), e(X, Y)."),
        _ => format!("{h}(Y) :- {h}(X), e(X, Y)."),
    }
}

/// Random programs as source text plus a nonempty output set.
fn arb_program() -> impl Strategy<Value = (String, Vec<String>)> {
    (1usize..=5).prop_flat_map(|npreds| {
        let rules = proptest::collection::vec((0..npreds, 0u8..7, 0usize..8), npreds..=3 * npreds);
        let mask = proptest::collection::vec(0u8..2, npreds);
        (rules, mask).prop_map(move |(rules, mask)| {
            let source: Vec<String> = rules
                .iter()
                .map(|&(head, kind, dep)| render_rule(head, kind, dep))
                .collect();
            let mut outputs: Vec<String> = (0..npreds)
                .filter(|&i| mask[i] == 1)
                .map(|i| format!("q{i}"))
                .collect();
            if outputs.is_empty() {
                outputs.push("q0".into());
            }
            (source.join("\n"), outputs)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pruned_evaluation_matches_unpruned_on_outputs((source, outputs) in arb_program()) {
        let s = chain(9);
        let program = parse_program(&source, &s).expect("generated programs parse");
        let mut plain = Evaluator::with_options(
            program.clone(),
            EvalOptions::new().outputs(outputs.iter().cloned()),
        )
        .expect("generated programs stratify");
        let mut pruned = Evaluator::with_options(
            program,
            EvalOptions::new()
                .outputs(outputs.iter().cloned())
                .prune_dead_rules(true),
        )
        .expect("pruning preserves stratifiability");

        let a = plain.evaluate(&s).unwrap();
        let b = pruned.evaluate(&s).unwrap();

        // Every output — and every predicate an output depends on — has
        // the identical relation. Relevance comes from the unpruned
        // session's own analysis, so the check covers the whole closure.
        let report = plain.analyze();
        let mut relevant_preds = vec![false; plain.program().idb_count()];
        for (i, rule) in plain.program().rules.iter().enumerate() {
            if report.relevant_rules[i] {
                if let mdtw_datalog::PredRef::Idb(h) = rule.head.pred {
                    relevant_preds[h.index()] = true;
                }
                for lit in &rule.body {
                    if let mdtw_datalog::PredRef::Idb(p) = lit.atom.pred {
                        relevant_preds[p.index()] = true;
                    }
                }
            }
        }
        for name in &outputs {
            if let Some(id) = plain.program().idb(name) {
                relevant_preds[id.index()] = true;
            }
        }
        for (p, &rel) in relevant_preds.iter().enumerate() {
            if rel {
                let id = mdtw_datalog::IdbId(p as u32);
                prop_assert_eq!(
                    a.store.tuples(id),
                    b.store.tuples(id),
                    "predicate q{} differs (pruned {} rules)\n{}",
                    p,
                    pruned.pruned_rule_count(),
                    source
                );
            }
        }

        // Stats stay compatible: pruning can only remove work.
        prop_assert!(b.stats.facts <= a.stats.facts);
        prop_assert!(b.stats.strata <= a.stats.strata);
        prop_assert!(pruned.program().rules.len() + pruned.pruned_rule_count()
            == plain.program().rules.len());
    }
}

#[test]
fn crafted_workload_prunes_rules_with_bit_identical_store() {
    // `reach` is the output; the `dead`/`deader`/`island` fragment (3
    // rules) is irrelevant and must be pruned without disturbing a single
    // derived tuple of the relevant closure.
    let src = "reach(X) :- first(X).\n\
               reach(Y) :- reach(X), e(X, Y).\n\
               far(X) :- reach(X), node(X).\n\
               dead(X) :- node(X), e(X, Y).\n\
               deader(X) :- dead(X), !far(X).\n\
               island(X) :- island(X), node(X).";
    let s = chain(11);
    let program = parse_program(src, &s).unwrap();
    let outputs = ["reach", "far"];

    let mut plain =
        Evaluator::with_options(program.clone(), EvalOptions::new().outputs(outputs)).unwrap();
    let mut pruned = Evaluator::with_options(
        program,
        EvalOptions::new().outputs(outputs).prune_dead_rules(true),
    )
    .unwrap();

    assert_eq!(pruned.pruned_rule_count(), 3, "dead fragment dropped");
    assert_eq!(pruned.program().rules.len(), 3);

    let a = plain.evaluate(&s).unwrap();
    let b = pruned.evaluate(&s).unwrap();
    for name in outputs {
        let id = plain.program().idb(name).unwrap();
        assert_eq!(a.store.tuples(id), b.store.tuples(id), "{name}");
        assert!(!a.store.tuples(id).is_empty(), "{name} derives facts");
    }
    assert!(
        b.stats.facts < a.stats.facts,
        "pruning skipped the dead fragment's facts"
    );
}
