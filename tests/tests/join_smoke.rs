//! Fast CI smoke for the indexed join engine: on transitive-closure chain
//! workloads the indexed semi-naive engine must beat the pre-index scan
//! engine's firing count (the rule split stops all-delta instantiations
//! from firing once per delta pass) and must not perform any full-relation
//! scan on delta-bound literals — after round 0, every store- or EDB-side
//! literal of a delta pass is an index probe.

use mdtw_datalog::{parse_program, Engine, EvalOptions, EvalStats, Evaluator, IdbStore, Program};
use mdtw_structure::{Domain, ElemId, Signature, Structure};
use std::sync::Arc;

/// One-shot evaluation through a fresh session with the given engine.
fn run(p: &Program, s: &Structure, engine: Engine) -> (IdbStore, EvalStats) {
    let mut session = Evaluator::with_options(p.clone(), EvalOptions::new().engine(engine))
        .expect("semipositive workload");
    let r = session.evaluate(s).expect("semipositive workload");
    (r.store, r.stats)
}

fn chain(n: usize) -> Structure {
    let sig = Arc::new(Signature::from_pairs([("e", 2)]));
    let dom = Domain::anonymous(n);
    let mut s = Structure::new(sig, dom);
    let e = s.signature().lookup("e").unwrap();
    for i in 0..n - 1 {
        s.insert(e, &[ElemId(i as u32), ElemId(i as u32 + 1)]);
    }
    s
}

/// A two-IDB-atom recursion that stays cheap for the scan engine too (its
/// delta is one tuple per round), so the firing comparison runs fast in
/// debug builds: `even` walks the chain two steps at a time, `epair` pairs
/// evens — every round re-fires the all-delta instantiation
/// `epair(2k, 2k)` once per delta pass under the seed engine.
const EVEN_PAIRS: &str = "even(x0).\n\
                          even(Z) :- even(X), e(X, Y), e(Y, Z).\n\
                          epair(X, Y) :- even(X), even(Y).";

#[test]
fn indexed_engine_beats_scan_firings_on_200_chain() {
    let s = chain(200);
    let p = parse_program(EVEN_PAIRS, &s).unwrap();
    let (indexed_store, indexed) = run(&p, &s, Engine::SemiNaiveIndexed);
    let (scan_store, scan) = run(&p, &s, Engine::SemiNaiveScan);

    let epair = p.idb("epair").unwrap();
    assert_eq!(indexed_store.tuples(epair).len(), 100 * 100);
    assert_eq!(indexed_store.tuples(epair), scan_store.tuples(epair));
    assert_eq!(indexed.facts, scan.facts);
    assert!(
        indexed.firings < scan.firings,
        "rule split must strictly reduce firings: indexed {} vs scan {}",
        indexed.firings,
        scan.firings
    );
}

#[test]
fn firings_strictly_decrease_at_chain_1000() {
    let s = chain(1000);
    let p = parse_program(EVEN_PAIRS, &s).unwrap();
    let (indexed_store, indexed) = run(&p, &s, Engine::SemiNaiveIndexed);
    let (scan_store, scan) = run(&p, &s, Engine::SemiNaiveScan);
    assert_eq!(indexed_store.fact_count(), scan_store.fact_count());
    assert_eq!(indexed.facts, scan.facts);
    assert!(indexed.firings < scan.firings);
}

#[test]
fn nonlinear_tc_firings_strictly_decrease() {
    let s = chain(60);
    let p = parse_program(
        "path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), path(Y, Z).",
        &s,
    )
    .unwrap();
    let (indexed_store, indexed) = run(&p, &s, Engine::SemiNaiveIndexed);
    let (scan_store, scan) = run(&p, &s, Engine::SemiNaiveScan);
    let path = p.idb("path").unwrap();
    assert_eq!(indexed_store.tuples(path).len(), 59 * 60 / 2);
    assert_eq!(indexed_store.tuples(path), scan_store.tuples(path));
    assert_eq!(indexed.facts, scan.facts);
    assert!(indexed.firings < scan.firings);
}

#[test]
fn no_full_scans_on_delta_bound_literals_at_chain_1000() {
    let s = chain(1000);
    let p = parse_program(
        "path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), e(Y, Z).",
        &s,
    )
    .unwrap();
    let (store, stats) = run(&p, &s, Engine::SemiNaiveIndexed);
    assert_eq!(store.fact_count(), 999 * 1000 / 2);
    // The only unindexed enumerations are the two unconstrained round-0
    // scans (one per rule's first body literal); every literal of every
    // delta pass either enumerates the delta relation or probes an index.
    assert_eq!(
        stats.full_scans, 2,
        "delta-bound literals must probe indexes, not scan relations"
    );
    assert!(stats.index_probes > 0);
}

/// Repeated evaluations through one session must reuse compiled plans:
/// every `evaluate` after the first on an identical program/structure
/// shape reports a plan-cache hit (this is what makes per-candidate
/// re-evaluation loops cheap).
#[test]
fn repeated_evaluations_hit_the_session_plan_cache() {
    let s = chain(120);
    let p = parse_program(EVEN_PAIRS, &s).unwrap();
    // The session owns its cache: hit/miss accounting is independent of
    // anything else in the process.
    let mut session = Evaluator::new(p).unwrap();
    let first = session.evaluate(&s).unwrap();
    assert_eq!(first.stats.plan_cache_hits, 0, "first evaluation must plan");
    let mut hits = 0;
    for _ in 0..3 {
        let r = session.evaluate(&s).unwrap();
        assert_eq!(r.store.fact_count(), first.store.fact_count());
        assert_eq!(r.stats.facts, first.stats.facts);
        assert_eq!(r.stats.firings, first.stats.firings);
        hits += r.stats.plan_cache_hits;
    }
    assert!(hits > 0, "repeated evaluations must reuse compiled plans");
    assert_eq!(hits, 3, "every re-evaluation hits");
    assert_eq!(session.plan_cache().len(), 1);

    // A fresh session starts cold — per-session isolation.
    let p = parse_program(EVEN_PAIRS, &s).unwrap();
    let cold = Evaluator::new(p).unwrap().evaluate(&s).unwrap();
    assert_eq!(cold.stats.plan_cache_hits, 0);
}

/// The derive path interns: every firing with an intensional head either
/// creates a new fact or resolves to an already-interned tuple, and the
/// accounting must add up exactly. Nonlinear transitive closure derives
/// `path(x, z)` once per intermediate vertex, so duplicates are plentiful.
#[test]
fn interning_accounts_for_every_firing() {
    let s = chain(40);
    let p = parse_program(
        "path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), path(Y, Z).",
        &s,
    )
    .unwrap();
    let (_, stats) = run(&p, &s, Engine::SemiNaiveIndexed);
    assert_eq!(
        stats.interned_hits + stats.facts,
        stats.firings,
        "each firing is a new fact or an interned duplicate"
    );
    assert!(
        stats.interned_hits > 0,
        "re-derivations through different midpoints are interned"
    );
}
