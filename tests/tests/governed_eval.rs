//! Resource-governed evaluation: every limit kind trips with a typed
//! error and a *sound* partial result, and the deterministic
//! fault-injection hook (`trip_after_checks`) proves graceful
//! degradation at **every** checkpoint an evaluation passes — the
//! partial store is always a subset of the untripped fixpoint, and
//! every completed stratum is bit-identical to it.

use mdtw_datalog::{
    parse_program, CancelToken, Engine, EvalError, EvalLimits, EvalOptions, EvalResult, Evaluator,
    IdbId, LimitKind, Program,
};
use mdtw_structure::{Domain, ElemId, Signature, Structure};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Workload builders
// ---------------------------------------------------------------------------

fn chain(n: usize) -> Structure {
    let sig = Arc::new(Signature::from_pairs([("e", 2), ("node", 1), ("first", 1)]));
    let mut s = Structure::new(sig, Domain::anonymous(n));
    let e = s.signature().lookup("e").unwrap();
    let node = s.signature().lookup("node").unwrap();
    let first = s.signature().lookup("first").unwrap();
    for i in 0..n {
        s.insert(node, &[ElemId(i as u32)]);
    }
    for i in 0..n - 1 {
        s.insert(e, &[ElemId(i as u32), ElemId(i as u32 + 1)]);
    }
    s.insert(first, &[ElemId(0)]);
    s
}

/// Transitive closure over a chain: one stratum, Θ(n) rounds, Θ(n²)
/// facts — plenty of rounds, facts and fuel to trip on.
const TC: &str = "path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), e(Y, Z).";

/// A 3-stratum negation chain (reach, its complement, the complement's
/// complement) — the graceful-degradation shape: completed strata must
/// survive a trip in a later one.
const STRAT3: &str = "reach(X) :- first(X).\nreach(Y) :- reach(X), e(X, Y).\n\
     unreach(X) :- node(X), !reach(X).\n\
     settled(X) :- node(X), !unreach(X), !first(X).";

fn governed(program: &Program, s: &Structure, limits: EvalLimits) -> Result<EvalResult, EvalError> {
    Evaluator::with_options(program.clone(), EvalOptions::new().limits(limits))
        .unwrap()
        .evaluate(s)
}

/// Every tuple of `part` must also be in `full` — a partial result never
/// invents facts.
fn assert_subset(part: &EvalResult, full: &EvalResult, program: &Program, ctx: &str) {
    for idb in 0..program.idb_count() {
        let id = IdbId(idb as u32);
        for tuple in part.store.tuples(id) {
            assert!(
                full.store.holds(id, &tuple),
                "{ctx}: partial result invented {}{tuple:?}",
                program.idb_names[idb]
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Per-kind trip tests
// ---------------------------------------------------------------------------

fn expect_trip(program: &Program, s: &Structure, limits: EvalLimits, want: LimitKind) -> EvalError {
    match governed(program, s, limits) {
        Err(err @ EvalError::LimitExceeded { kind, .. }) => {
            assert_eq!(kind, want, "tripped on the wrong limit: {err}");
            err
        }
        Ok(_) => panic!("{want:?} limit never tripped"),
        Err(other) => panic!("unexpected error in place of {want:?}: {other}"),
    }
}

#[test]
fn max_rounds_trips_with_partial_result() {
    let s = chain(64);
    let p = parse_program(TC, &s).unwrap();
    let full = governed(&p, &s, EvalLimits::new()).unwrap();
    let err = expect_trip(&p, &s, EvalLimits::new().max_rounds(3), LimitKind::Rounds);
    let EvalError::LimitExceeded { stats, partial, .. } = err else {
        unreachable!()
    };
    // The governor checks at round granularity: it may finish the round
    // in flight, never more.
    assert!(
        stats.rounds <= 4,
        "ran {} rounds past a 3-round cap",
        stats.rounds
    );
    assert!(stats.facts > 0, "trip stats must be populated");
    let partial = partial.expect("join engines always attach a partial result");
    assert!(partial.store.fact_count() > 0);
    assert!(partial.store.fact_count() < full.store.fact_count());
    assert_subset(&partial, &full, &p, "max_rounds");
}

#[test]
fn max_derived_facts_trips() {
    let s = chain(64);
    let p = parse_program(TC, &s).unwrap();
    let full = governed(&p, &s, EvalLimits::new()).unwrap();
    let err = expect_trip(
        &p,
        &s,
        EvalLimits::new().max_derived_facts(100),
        LimitKind::Facts,
    );
    let EvalError::LimitExceeded { stats, partial, .. } = err else {
        unreachable!()
    };
    assert!(stats.facts >= 100, "must have actually exceeded the cap");
    let partial = partial.expect("partial result");
    assert!(partial.store.fact_count() < full.store.fact_count());
    assert_subset(&partial, &full, &p, "max_derived_facts");
}

#[test]
fn fuel_trips_and_meter_reports_spend() {
    let s = chain(64);
    let p = parse_program(TC, &s).unwrap();
    let limits = EvalLimits::new().fuel(200);
    let err = expect_trip(&p, &s, limits.clone(), LimitKind::Fuel);
    let EvalError::LimitExceeded { partial, .. } = err else {
        unreachable!()
    };
    assert!(partial.is_some());
    // The shared meter records the spend (amortized: overshoot bounded
    // by one check interval per engine loop).
    assert!(limits.fuel_spent() > 200);
    assert!(limits.checks_spent() > 0);
}

#[test]
fn deadline_trips_immediately_when_zero() {
    let s = chain(64);
    let p = parse_program(TC, &s).unwrap();
    expect_trip(
        &p,
        &s,
        EvalLimits::new().deadline(Duration::ZERO),
        LimitKind::Deadline,
    );
}

#[test]
fn cancellation_token_is_shared_and_trips() {
    let s = chain(64);
    let p = parse_program(TC, &s).unwrap();
    let token = CancelToken::new();
    assert!(!token.is_cancelled());
    // Not cancelled: evaluation completes.
    let limits = EvalLimits::new().cancel_token(token.clone());
    governed(&p, &s, limits).unwrap();
    // Cancelled (from a clone — the token is shared): evaluation trips.
    token.cancel();
    assert!(token.is_cancelled());
    let limits = EvalLimits::new().cancel_token(token.clone());
    expect_trip(&p, &s, limits, LimitKind::Cancelled);
}

#[test]
fn quasi_guarded_trip_carries_no_partial() {
    // The QG pipeline cannot attach a sound partial model (the least
    // model of a partial grounding is not a subset of the real one), so
    // its trip must carry `partial: None`.
    let s = chain(16);
    let p = parse_program("reach(X) :- first(X).\nreach(Y) :- reach(X), e(X, Y).", &s).unwrap();
    let mut catalog = mdtw_datalog::FdCatalog::new();
    let e = s.signature().lookup("e").unwrap();
    catalog.declare(e, vec![0], vec![1]);
    catalog.declare(e, vec![1], vec![0]);
    let result = Evaluator::with_options(
        p,
        EvalOptions::new()
            .engine(Engine::QuasiGuarded)
            .fd_catalog(catalog)
            .limits(EvalLimits::new().trip_after_checks(1)),
    )
    .unwrap()
    .evaluate(&s);
    match result {
        Err(EvalError::LimitExceeded { kind, partial, .. }) => {
            assert_eq!(kind, LimitKind::Injected);
            assert!(partial.is_none(), "QG trips must not attach partials");
        }
        other => panic!("expected an injected trip, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Deterministic fault injection: the k-sweep
// ---------------------------------------------------------------------------

/// Trips at every checkpoint an untripped evaluation passes, one at a
/// time, and pins the graceful-degradation contract at each: typed
/// `Injected` error, partial ⊆ full, completed strata bit-identical.
fn sweep_every_checkpoint(program: &Program, s: &Structure, ctx: &str) {
    let probe = EvalLimits::new();
    let full = governed(program, s, probe.clone()).unwrap();
    let total_checks = probe.checks_spent();
    assert!(
        total_checks > 0,
        "{ctx}: a governed run must check at least once"
    );
    let full_strata = full.stats.strata;

    for k in 1..=total_checks {
        let limits = EvalLimits::new().trip_after_checks(k);
        match governed(program, s, limits) {
            Err(EvalError::LimitExceeded {
                kind,
                stats,
                partial,
            }) => {
                assert_eq!(kind, LimitKind::Injected, "{ctx}: k={k}");
                let partial = partial.unwrap_or_else(|| panic!("{ctx}: k={k}: no partial"));
                assert_subset(&partial, &full, program, ctx);
                // Completed strata are final: their predicates hold
                // exactly the untripped fixpoint, tuple for tuple.
                assert!(stats.strata <= full_strata, "{ctx}: k={k}");
                for idb in 0..program.idb_count() {
                    let id = IdbId(idb as u32);
                    if full.stratification.stratum_of(id) < stats.strata {
                        assert_eq!(
                            partial.store.tuples(id),
                            full.store.tuples(id),
                            "{ctx}: k={k}: completed stratum {} predicate {} diverged",
                            full.stratification.stratum_of(id),
                            program.idb_names[idb]
                        );
                    }
                }
            }
            Ok(_) => panic!("{ctx}: k={k} ≤ {total_checks} checks must trip"),
            Err(other) => panic!("{ctx}: k={k}: unexpected error {other}"),
        }
    }

    // One checkpoint past the last: the evaluation completes untouched.
    let limits = EvalLimits::new().trip_after_checks(total_checks + 1);
    let redo = governed(program, s, limits).unwrap();
    for idb in 0..program.idb_count() {
        let id = IdbId(idb as u32);
        assert_eq!(
            redo.store.tuples(id),
            full.store.tuples(id),
            "{ctx}: k>total"
        );
    }
}

#[test]
fn tc_survives_a_trip_at_every_checkpoint() {
    let s = chain(48);
    let p = parse_program(TC, &s).unwrap();
    sweep_every_checkpoint(&p, &s, "linear TC");
}

#[test]
fn stratified_chain_survives_a_trip_at_every_checkpoint() {
    let s = chain(48);
    let p = parse_program(STRAT3, &s).unwrap();
    sweep_every_checkpoint(&p, &s, "3-stratum chain");
}

// ---------------------------------------------------------------------------
// Randomized stratified programs
// ---------------------------------------------------------------------------

/// Builds a random stratified program over `e`/`node`/`first`: a base
/// reachability stratum, then `depth` alternating-negation strata.
fn layered_program(depth: usize, fanout: usize, s: &Structure) -> Program {
    let mut src = String::from("p0(X) :- first(X).\np0(Y) :- p0(X), e(X, Y).\n");
    for d in 1..=depth {
        let prev = d - 1;
        src.push_str(&format!("p{d}(X) :- node(X), !p{prev}(X).\n"));
        for f in 0..fanout {
            src.push_str(&format!("p{d}(Y) :- p{d}(X), e(X, Y), node(Y). % f{f}\n"));
        }
    }
    parse_program(&src, s).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_layered_programs_degrade_gracefully(
        n in 8usize..24,
        depth in 1usize..4,
        fanout in 0usize..2,
        k in 1u64..12,
    ) {
        let s = chain(n);
        let p = layered_program(depth, fanout, &s);
        let probe = EvalLimits::new();
        let full = governed(&p, &s, probe.clone()).unwrap();
        let total = probe.checks_spent();
        let limits = EvalLimits::new().trip_after_checks(k);
        match governed(&p, &s, limits) {
            Ok(redo) => {
                // Didn't trip: k exceeded the checkpoint count, and the
                // result matches the untripped fixpoint exactly.
                prop_assert!(k > total);
                for idb in 0..p.idb_count() {
                    let id = IdbId(idb as u32);
                    prop_assert_eq!(redo.store.tuples(id), full.store.tuples(id));
                }
            }
            Err(EvalError::LimitExceeded { kind, stats, partial }) => {
                prop_assert_eq!(kind, LimitKind::Injected);
                prop_assert!(k <= total);
                let partial = partial.expect("stratified trips carry partials");
                assert_subset(&partial, &full, &p, "layered");
                for idb in 0..p.idb_count() {
                    let id = IdbId(idb as u32);
                    if full.stratification.stratum_of(id) < stats.strata {
                        prop_assert_eq!(partial.store.tuples(id), full.store.tuples(id));
                    }
                }
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Budget sharing across the stack
// ---------------------------------------------------------------------------

#[test]
fn budget_is_cumulative_across_evaluations_sharing_a_meter() {
    let s = chain(32);
    let p = parse_program(TC, &s).unwrap();
    // One evaluation spends ~f fuel; a budget of 1.5f shared across two
    // evaluations of the same session must trip on the second.
    let probe = EvalLimits::new();
    governed(&p, &s, probe.clone()).unwrap();
    let single = probe.fuel_spent();
    assert!(single > 0);

    let limits = EvalLimits::new().fuel(single + single / 2);
    let mut session =
        Evaluator::with_options(p.clone(), EvalOptions::new().limits(limits)).unwrap();
    session
        .evaluate(&s)
        .expect("first evaluation fits the budget");
    match session.evaluate(&s) {
        Err(EvalError::LimitExceeded { kind, .. }) => assert_eq!(kind, LimitKind::Fuel),
        other => panic!("shared meter must exhaust on the second run, got {other:?}"),
    }
}

#[test]
fn optimizer_probes_share_the_evaluation_budget() {
    // With minimization on and a meter that trips instantly, the nested
    // containment evaluations trip, the transform degrades to "not
    // applied" (the redundant rule survives), and the *outer* evaluation
    // still runs to completion — construction never fails.
    let s = chain(8);
    let src = "q(X) :- e(X, Y).\nq(X) :- e(X, Y), node(Y).";
    let p = parse_program(src, &s).unwrap();

    let plain = Evaluator::with_options(p.clone(), EvalOptions::new().minimize(true)).unwrap();
    assert_eq!(
        plain.program().rules.len(),
        1,
        "ungoverned minimize drops the instance"
    );
    assert!(!plain.transforms().budget_tripped);

    let token = CancelToken::new();
    token.cancel();
    let limits = EvalLimits::new().cancel_token(token.clone());
    let governed_session =
        Evaluator::with_options(p.clone(), EvalOptions::new().minimize(true).limits(limits))
            .unwrap();
    assert_eq!(
        governed_session.program().rules.len(),
        2,
        "tripped probes must conservatively keep every rule"
    );
    assert!(governed_session.transforms().budget_tripped);

    // Un-cancel is impossible (tokens are one-way), so evaluation under
    // the same limits trips too — but with a fresh, untripped budget the
    // conservatively-kept program evaluates to the same fixpoint.
    let mut fresh = Evaluator::with_options(p.clone(), EvalOptions::new().minimize(true)).unwrap();
    let mut kept = Evaluator::new(p).unwrap();
    let a = fresh.evaluate(&s).unwrap();
    let b = kept.evaluate(&s).unwrap();
    assert_eq!(a.store.tuples(IdbId(0)), b.store.tuples(IdbId(0)));
}

#[test]
fn analysis_semantic_tier_is_budgeted_by_default() {
    use mdtw_datalog::{analyze, AnalysisOptions};
    let s = chain(6);
    let src = "q(X) :- e(X, Y).\nq(X) :- e(X, Y), node(Y).";
    let p = parse_program(src, &s).unwrap();
    // Default budget: generous, so the probes complete on a small program.
    let report = analyze(&p, &AnalysisOptions::new().semantic(true));
    let semantic = report.semantic.expect("semantic tier ran");
    assert!(!semantic.budget_tripped);
    assert_eq!(semantic.redundant_rules, vec![false, true]);
    // Starved budget: the tier still returns — degraded, flagged.
    let report = analyze(
        &p,
        &AnalysisOptions::new()
            .semantic(true)
            .limits(EvalLimits::new().fuel(0)),
    );
    let semantic = report.semantic.expect("semantic tier still runs");
    assert!(semantic.budget_tripped);
    assert_eq!(
        semantic.redundant_rules,
        vec![false, false],
        "degrades to not-proven"
    );
}

#[test]
fn limit_error_display_names_the_tripped_limit() {
    let s = chain(64);
    let p = parse_program(TC, &s).unwrap();
    let err = expect_trip(&p, &s, EvalLimits::new().max_rounds(1), LimitKind::Rounds);
    let msg = err.to_string();
    assert!(msg.contains("rounds"), "{msg}");
    assert!(msg.contains("partial result attached"), "{msg}");
}
