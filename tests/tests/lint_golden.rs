//! Golden test for the lint pipeline: the checked-in
//! `tests/fixtures/lint_demo.dl` must produce exactly the expected
//! `MD0xx` diagnostics, at the expected source locations, and the JSON
//! encoding must round-trip.

use mdtw_datalog::analysis::{LintCode, Severity};
use mdtw_datalog::lint::{diagnostic_from_json, diagnostic_to_json, json, lint_source};

const FIXTURE: &str = include_str!("../fixtures/lint_demo.dl");

#[test]
fn fixture_produces_exactly_the_expected_diagnostics() {
    let outcome = lint_source(FIXTURE).expect("pragmas are well-formed");
    assert!(outcome.parse_error.is_none(), "{:?}", outcome.parse_error);
    assert_eq!(outcome.decls.outputs, vec!["odd".to_owned()]);
    let report = outcome.report.expect("lenient parse succeeds");

    // Code + line + column, in report order.
    let got: Vec<(LintCode, u32, u32)> = report
        .diagnostics
        .iter()
        .map(|d| (d.code, d.span.line, d.span.col))
        .collect();
    assert_eq!(
        got,
        vec![
            // even(X) :- node(X), !odd(X).  — odd ¬→ even → odd
            (LintCode::NegativeCycle, 7, 1),
            // orphan is not reachable from the declared output `odd`…
            (LintCode::UnusedPredicate, 8, 1),
            // …so its defining rule is dead…
            (LintCode::DeadRule, 8, 1),
            // …and `Unused` occurs once, in the literal `e(X, Unused)`.
            (LintCode::SingletonVariable, 8, 23),
        ],
        "{:#?}",
        report.diagnostics
    );

    assert!(report.has_errors());
    assert_eq!(report.error_count(), 1);
    assert_eq!(report.warning_count(), 3);
    assert_eq!(report.strata, None, "unstratifiable: no stratum count");
    assert!(report.monadic);

    // The singleton-variable span covers exactly the offending literal.
    let singleton = report
        .diagnostics
        .iter()
        .find(|d| d.code == LintCode::SingletonVariable)
        .unwrap();
    assert_eq!(
        &FIXTURE[singleton.span.start as usize..singleton.span.end as usize],
        "e(X, Unused)"
    );
}

#[test]
fn fixture_diagnostics_round_trip_through_json() {
    let outcome = lint_source(FIXTURE).unwrap();
    let report = outcome.report.unwrap();
    for d in &report.diagnostics {
        let encoded = diagnostic_to_json(d).render();
        let value = json::parse(&encoded).expect("emitted JSON parses");
        let decoded = diagnostic_from_json(&value).expect("all fields survive");
        assert_eq!(&decoded, d);
    }
}

#[test]
fn fixture_renders_with_carets() {
    let outcome = lint_source(FIXTURE).unwrap();
    let report = outcome.report.unwrap();
    let error = report
        .diagnostics
        .iter()
        .find(|d| d.severity == Severity::Error)
        .unwrap();
    let rendered = error.render(Some(FIXTURE), "lint_demo.dl");
    assert!(rendered.starts_with("error[MD003]"), "{rendered}");
    assert!(rendered.contains("--> lint_demo.dl:7:1"), "{rendered}");
    assert!(
        rendered.contains("7 | even(X) :- node(X), !odd(X)."),
        "{rendered}"
    );
    assert!(
        rendered.contains("^^^^^^^^^^^^^^^^^^^^^^^^^^^"),
        "{rendered}"
    );
}
