//! Golden test for the lint pipeline: the checked-in
//! `tests/fixtures/lint_demo.dl` must produce exactly the expected
//! `MD0xx` diagnostics, at the expected source locations, and the JSON
//! encoding must round-trip.

use mdtw_datalog::analysis::{LintCode, Severity};
use mdtw_datalog::lint::{
    diagnostic_from_json, diagnostic_to_json, file_json, json, lint_source, optimize_source,
    render_pragma_error, scan_pragmas,
};

const FIXTURE: &str = include_str!("../fixtures/lint_demo.dl");

#[test]
fn fixture_produces_exactly_the_expected_diagnostics() {
    let outcome = lint_source(FIXTURE).expect("pragmas are well-formed");
    assert!(outcome.parse_error.is_none(), "{:?}", outcome.parse_error);
    assert_eq!(outcome.decls.outputs, vec!["odd".to_owned()]);
    let report = outcome.report.expect("lenient parse succeeds");

    // Code + line + column, in report order.
    let got: Vec<(LintCode, u32, u32)> = report
        .diagnostics
        .iter()
        .map(|d| (d.code, d.span.line, d.span.col))
        .collect();
    assert_eq!(
        got,
        vec![
            // even(X) :- node(X), !odd(X).  — odd ¬→ even → odd
            (LintCode::NegativeCycle, 7, 1),
            // orphan is not reachable from the declared output `odd`…
            (LintCode::UnusedPredicate, 8, 1),
            // …so its defining rule is dead…
            (LintCode::DeadRule, 8, 1),
            // …and `Unused` occurs once, in the literal `e(X, Unused)`.
            (LintCode::SingletonVariable, 8, 23),
        ],
        "{:#?}",
        report.diagnostics
    );

    assert!(report.has_errors());
    assert_eq!(report.error_count(), 1);
    assert_eq!(report.warning_count(), 3);
    assert_eq!(report.strata, None, "unstratifiable: no stratum count");
    assert!(report.monadic);

    // The singleton-variable span covers exactly the offending literal.
    let singleton = report
        .diagnostics
        .iter()
        .find(|d| d.code == LintCode::SingletonVariable)
        .unwrap();
    assert_eq!(
        &FIXTURE[singleton.span.start as usize..singleton.span.end as usize],
        "e(X, Unused)"
    );
}

#[test]
fn fixture_diagnostics_round_trip_through_json() {
    let outcome = lint_source(FIXTURE).unwrap();
    let report = outcome.report.unwrap();
    for d in &report.diagnostics {
        let encoded = diagnostic_to_json(d).render();
        let value = json::parse(&encoded).expect("emitted JSON parses");
        let decoded = diagnostic_from_json(&value).expect("all fields survive");
        assert_eq!(&decoded, d);
    }
}

#[test]
fn fixture_renders_with_carets() {
    let outcome = lint_source(FIXTURE).unwrap();
    let report = outcome.report.unwrap();
    let error = report
        .diagnostics
        .iter()
        .find(|d| d.severity == Severity::Error)
        .unwrap();
    let rendered = error.render(Some(FIXTURE), "lint_demo.dl");
    assert!(rendered.starts_with("error[MD003]"), "{rendered}");
    assert!(rendered.contains("--> lint_demo.dl:7:1"), "{rendered}");
    assert!(
        rendered.contains("7 | even(X) :- node(X), !odd(X)."),
        "{rendered}"
    );
    assert!(
        rendered.contains("^^^^^^^^^^^^^^^^^^^^^^^^^^^"),
        "{rendered}"
    );
}

#[test]
fn file_json_matches_the_documented_shape() {
    // The object `mdtw-lint --json` emits per file, validated field by
    // field so scripts can rely on it.
    let outcome = lint_source(FIXTURE).unwrap();
    let encoded = file_json("lint_demo.dl", &outcome, None).render();
    let value = json::parse(&encoded).expect("emitted JSON parses");
    assert_eq!(value.get("schema_version").unwrap().as_usize(), Some(1));
    assert_eq!(value.get("file").unwrap().as_str(), Some("lint_demo.dl"));
    let diags = value.get("diagnostics").unwrap().as_arr().unwrap();
    assert_eq!(diags.len(), 4);
    for d in diags {
        for key in ["code", "severity", "message", "line", "col", "start", "end"] {
            assert!(d.get(key).is_some(), "missing `{key}` in {d:?}");
        }
        assert!(diagnostic_from_json(d).is_some(), "round-trips: {d:?}");
    }
    let summary = value.get("summary").unwrap();
    assert_eq!(summary.get("errors").unwrap().as_usize(), Some(1));
    assert_eq!(summary.get("warnings").unwrap().as_usize(), Some(3));
    assert_eq!(summary.get("monadic").unwrap(), &json::Json::Bool(true));
    assert!(summary.get("recursion").unwrap().as_str().is_some());
    assert_eq!(summary.get("strata").unwrap(), &json::Json::Null);
    assert!(value.get("optimize").is_none(), "only with --optimize");
    assert!(value.get("parse_error").is_none());

    // With --optimize, the `optimize` object carries the dry-run.
    let source = include_str!("../fixtures/bounded_tc.dl");
    let outcome = lint_source(source).unwrap();
    let optimized = optimize_source(source).unwrap();
    let encoded = file_json("bounded_tc.dl", &outcome, Some(&optimized)).render();
    let value = json::parse(&encoded).unwrap();
    let opt = value.get("optimize").expect("optimize field present");
    assert_eq!(opt.get("rules_before").unwrap().as_usize(), Some(3));
    assert_eq!(opt.get("removed_rules").unwrap().as_usize(), Some(1));
    assert_eq!(opt.get("bounded_sccs").unwrap().as_usize(), Some(1));
    assert!(opt.get("magic_applied").is_some());
    let rules = opt.get("rules").unwrap().as_arr().unwrap();
    assert!(!rules.is_empty());
    assert!(rules.iter().all(|r| r.as_str().is_some()));
}

#[test]
fn multi_line_rule_caret_clamps_to_the_first_line() {
    // A rule wrapped across three lines: the whole-rule span starts on
    // line 2, and the caret run must underline only the first line of
    // the rule, not bleed into the continuation lines.
    let source = "%! edb e/2\nodd(X) :-\n    e(Y, X),\n    even(Y).\neven(X) :- e(X, _Z), !odd(X).";
    let outcome = lint_source(source).unwrap();
    let report = outcome.report.unwrap();
    let error = report
        .diagnostics
        .iter()
        .find(|d| d.code == LintCode::NegativeCycle)
        .expect("negative cycle over the wrapped rule");
    let rendered = error.render(Some(source), "wrapped.dl");
    let caret_line = rendered.lines().last().unwrap();
    let source_line = rendered
        .lines()
        .find(|l| l.contains("| even(X)"))
        .unwrap_or_else(|| panic!("echoed source line missing:\n{rendered}"));
    assert!(
        caret_line
            .trim_start_matches([' ', '|'])
            .chars()
            .all(|c| c == '^'),
        "{rendered}"
    );
    // Caret run never longer than the echoed source line's content.
    let content_len = source_line.split(" | ").nth(1).unwrap().chars().count();
    let caret_len = caret_line.chars().filter(|&c| c == '^').count();
    assert!(caret_len <= content_len, "{rendered}");
    assert!(caret_len >= 1, "{rendered}");
}

#[test]
fn crlf_input_keeps_lines_columns_and_carets_accurate() {
    // The same program with Windows line endings: line/col of every
    // diagnostic must match the LF version, and the rendered snippet
    // must neither echo the `\r` nor misplace the caret run.
    let lf = "%! edb e/2\n%! edb node/1\nodd(X) :- e(Y, X), node(Y).\nflag(X) :- node(X), e(X, Unused).\n";
    let crlf = lf.replace('\n', "\r\n");
    let report_lf = lint_source(lf).unwrap().report.unwrap();
    let report_crlf = lint_source(&crlf).unwrap().report.unwrap();
    let locs = |r: &mdtw_datalog::ProgramReport| {
        r.diagnostics
            .iter()
            .map(|d| (d.code, d.span.line, d.span.col))
            .collect::<Vec<_>>()
    };
    assert_eq!(locs(&report_lf), locs(&report_crlf));

    let singleton = report_crlf
        .diagnostics
        .iter()
        .find(|d| d.code == LintCode::SingletonVariable)
        .expect("`Unused` is a singleton");
    assert_eq!((singleton.span.line, singleton.span.col), (4, 21));
    assert_eq!(
        &crlf[singleton.span.start as usize..singleton.span.end as usize],
        "e(X, Unused)"
    );
    let rendered = singleton.render(Some(&crlf), "crlf.dl");
    assert!(rendered.contains("--> crlf.dl:4:21"), "{rendered}");
    assert!(
        rendered.contains("4 | flag(X) :- node(X), e(X, Unused).\n"),
        "no stray carriage return in the echoed line: {rendered:?}"
    );
    assert!(
        rendered.ends_with(&format!("| {}{}", " ".repeat(20), "^".repeat(12))),
        "caret run exactly under the literal: {rendered}"
    );
}

#[test]
fn malformed_pragmas_render_with_carets() {
    let source = "% header\r\n  %! edb broken\r\nq(X) :- e(X, X).\r\n";
    let err = scan_pragmas(source).expect_err("missing arity");
    assert_eq!(err.line(), 2);
    assert_eq!(
        &source[err.span.start as usize..err.span.end as usize],
        "%! edb broken"
    );
    let rendered = render_pragma_error(&err, source, "broken.dl");
    assert!(
        rendered.starts_with("error: malformed pragma:"),
        "{rendered}"
    );
    assert!(rendered.contains("--> broken.dl:2:3"), "{rendered}");
    assert!(rendered.contains("2 |   %! edb broken\n"), "{rendered}");
    assert!(rendered.ends_with("|   ^^^^^^^^^^^^^"), "{rendered}");
}
