//! A corpus of classical datalog programs exercising the engine beyond
//! the paper's fragment: non-linear recursion, mutual recursion,
//! same-generation, negation — each checked against hand-computed
//! results and across evaluation strategies.

use mdtw_datalog::{parse_program, Engine, EvalOptions, Evaluator};
use mdtw_structure::{Domain, ElemId, Signature, Structure};
use std::sync::Arc;

/// A small directed graph with a parent relation for same-generation.
fn family() -> Structure {
    let sig = Arc::new(Signature::from_pairs([("parent", 2)]));
    let mut dom = Domain::new();
    let names = ["alice", "bob", "carol", "dave", "eve", "frank"];
    let ids: Vec<ElemId> = names.iter().map(|n| dom.insert(*n)).collect();
    let mut s = Structure::new(sig, dom);
    let p = s.signature().lookup("parent").unwrap();
    // alice's children are carol and dave (siblings); eve and frank are
    // grandchildren through carol and dave respectively; bob is isolated.
    for (a, b) in [(0, 2), (0, 3), (2, 4), (3, 5)] {
        s.insert(p, &[ids[a], ids[b]]);
    }
    s
}

#[test]
fn same_generation() {
    let s = family();
    let program = "sg(X, X) :- parent(X, Y).\n\
                   sg(X, X) :- parent(Y, X).\n\
                   sg(X, Y) :- parent(Xp, X), parent(Yp, Y), sg(Xp, Yp).";
    let p = parse_program(program, &s).unwrap();
    let mut session = Evaluator::new(p).unwrap();
    let store = session.evaluate(&s).unwrap().store;
    let p = session.program();
    let sg = p.idb("sg").unwrap();
    let carol = s.domain().lookup("carol").unwrap();
    let dave = s.domain().lookup("dave").unwrap();
    let eve = s.domain().lookup("eve").unwrap();
    let frank = s.domain().lookup("frank").unwrap();
    assert!(store.holds(sg, &[carol, dave]));
    assert!(store.holds(sg, &[eve, frank]));
    assert!(!store.holds(sg, &[carol, eve]));
}

#[test]
fn mutual_recursion_even_odd() {
    let sig = Arc::new(Signature::from_pairs([("succ", 2), ("zero", 1)]));
    let dom = Domain::anonymous(6);
    let mut s = Structure::new(sig, dom);
    let succ = s.signature().lookup("succ").unwrap();
    let zero = s.signature().lookup("zero").unwrap();
    s.insert(zero, &[ElemId(0)]);
    for i in 0..5u32 {
        s.insert(succ, &[ElemId(i), ElemId(i + 1)]);
    }
    let program = "even(X) :- zero(X).\n\
                   odd(Y) :- even(X), succ(X, Y).\n\
                   even(Y) :- odd(X), succ(X, Y).";
    let p = parse_program(program, &s).unwrap();
    let mut session = Evaluator::new(p).unwrap();
    let store = session.evaluate(&s).unwrap().store;
    let p = session.program();
    let even = p.idb("even").unwrap();
    let odd = p.idb("odd").unwrap();
    assert_eq!(store.unary(even), vec![ElemId(0), ElemId(2), ElemId(4)]);
    assert_eq!(store.unary(odd), vec![ElemId(1), ElemId(3), ElemId(5)]);
}

#[test]
fn nonlinear_transitive_closure() {
    // path(X,Z) :- path(X,Y), path(Y,Z): quadratic rule, same fixpoint.
    let sig = Arc::new(Signature::from_pairs([("e", 2)]));
    let dom = Domain::anonymous(8);
    let mut s = Structure::new(sig, dom);
    let e = s.signature().lookup("e").unwrap();
    for i in 0..7u32 {
        s.insert(e, &[ElemId(i), ElemId(i + 1)]);
    }
    let linear = parse_program(
        "path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), e(Y, Z).",
        &s,
    )
    .unwrap();
    let nonlinear = parse_program(
        "path(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), path(Y, Z).",
        &s,
    )
    .unwrap();
    let pa = linear.idb("path").unwrap();
    let pb = nonlinear.idb("path").unwrap();
    let a = Evaluator::new(linear).unwrap().evaluate(&s).unwrap().store;
    let b = Evaluator::new(nonlinear)
        .unwrap()
        .evaluate(&s)
        .unwrap()
        .store;
    assert_eq!(a.tuples(pa), b.tuples(pb));
    assert_eq!(a.tuples(pa).len(), 7 + 6 + 5 + 4 + 3 + 2 + 1);
}

#[test]
fn semipositive_negation_complement() {
    // Unreachable vertices = all vertices minus reachable ones.
    let sig = Arc::new(Signature::from_pairs([("e", 2), ("v", 1), ("start", 1)]));
    let dom = Domain::anonymous(6);
    let mut s = Structure::new(sig, dom);
    let e = s.signature().lookup("e").unwrap();
    let v = s.signature().lookup("v").unwrap();
    let start = s.signature().lookup("start").unwrap();
    for i in 0..6u32 {
        s.insert(v, &[ElemId(i)]);
    }
    s.insert(start, &[ElemId(0)]);
    s.insert(e, &[ElemId(0), ElemId(1)]);
    s.insert(e, &[ElemId(1), ElemId(2)]);
    s.insert(e, &[ElemId(3), ElemId(4)]); // disconnected component
    let p = parse_program(
        "reach(X) :- start(X).\nreach(Y) :- reach(X), e(X, Y).\n\
         dead(X) :- v(X), !start(X), !e(x0, X), !e(x1, X), !e(x3, X).",
        &s,
    )
    .unwrap();
    let mut session = Evaluator::new(p).unwrap();
    let store = session.evaluate(&s).unwrap().store;
    let p = session.program();
    let reach = p.idb("reach").unwrap();
    assert_eq!(store.unary(reach), vec![ElemId(0), ElemId(1), ElemId(2)]);
    let dead = p.idb("dead").unwrap();
    // 3 and 5 have no incoming edges from 0,1,3 and are not the start:
    // 3 qualifies (no incoming at all), 5 qualifies, 4 has e(3,4).
    assert_eq!(store.unary(dead), vec![ElemId(3), ElemId(5)]);
}

#[test]
fn naive_and_seminaive_agree_on_corpus() {
    let s = family();
    let programs = [
        "anc(X, Y) :- parent(X, Y).\nanc(X, Z) :- anc(X, Y), parent(Y, Z).",
        "sg(X, X) :- parent(X, Y).\nsg(X, X) :- parent(Y, X).\n\
         sg(X, Y) :- parent(Xp, X), parent(Yp, Y), sg(Xp, Yp).",
        "proud(X) :- parent(X, Y), !parent(Y, X).",
    ];
    for (i, src) in programs.iter().enumerate() {
        let p = parse_program(src, &s).unwrap();
        let a = Evaluator::with_options(p.clone(), EvalOptions::new().engine(Engine::Naive))
            .unwrap()
            .evaluate(&s)
            .unwrap()
            .store;
        let b = Evaluator::new(p.clone())
            .unwrap()
            .evaluate(&s)
            .unwrap()
            .store;
        for idb in 0..p.idb_count() {
            let id = mdtw_datalog::IdbId(idb as u32);
            assert_eq!(a.tuples(id), b.tuples(id), "program {i}, idb {idb}");
        }
    }
}
