//! End-to-end validation of the Theorem 4.5 pipeline: MSO query →
//! generic compilation → quasi-guarded monadic datalog over τ_td →
//! linear-time evaluation, cross-checked against the naive model checker
//! on randomized bounded-treewidth inputs.

use mdtw_datalog::{EvalOptions, Evaluator, FdCatalog};
use mdtw_decomp::{decompose, encode_tuple_td, Heuristic, TupleTd};
use mdtw_graph::{encode_graph, Graph};
use mdtw_mso::{
    compile::compile_unary_filtered, eval_unary, has_neighbor, isolated, Budget, CompileLimits,
    IndVar, Mso,
};
use mdtw_structure::Structure;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn undirected(s: &Structure) -> bool {
    let e = s.signature().lookup("e").expect("e");
    s.relation(e)
        .iter()
        .all(|t| t[0] != t[1] && s.holds(e, &[t[1], t[0]]))
}

/// A random forest on `n` vertices (treewidth ≤ 1).
fn random_forest(rng: &mut SmallRng, n: usize) -> Graph {
    let mut g = Graph::new(n);
    for v in 1..n as u32 {
        if rng.random::<f64>() < 0.7 {
            let parent = rng.random_range(0..v);
            g.add_edge(parent, v);
        }
    }
    g
}

fn check_query_on_forests(phi: &Mso, seed: u64) {
    let sig = Arc::new(mdtw_graph::graph_signature());
    let compiled = compile_unary_filtered(
        phi,
        IndVar(0),
        &sig,
        1,
        CompileLimits::default(),
        &undirected,
    )
    .expect("width-1 compilation fits the limits");
    compiled.program.check_semipositive().unwrap();

    // One compiled program, many decomposition encodings: both paths run
    // as reused Evaluator sessions (created lazily on the first encoding,
    // whose τ_td signature is shared by all of them).
    let mut qg_session: Option<Evaluator> = None;
    let mut reference_session: Option<Evaluator> = None;

    let mut rng = SmallRng::seed_from_u64(seed);
    for i in 0..10 {
        let g = random_forest(&mut rng, 4 + i);
        let s = encode_graph(&g);
        let td = decompose(&s, Heuristic::MinDegree);
        let tuple_td = TupleTd::from_td_with_width(&td, s.domain().len(), 1).unwrap();
        assert_eq!(tuple_td.validate_normal_form(), Ok(()));
        let enc = encode_tuple_td(&s, &tuple_td);

        // Linear path: quasi-guarded grounding + LTUR.
        let qg_session = qg_session.get_or_insert_with(|| {
            let catalog = FdCatalog::for_td_signature(&enc.structure);
            Evaluator::with_options(
                compiled.program.clone(),
                EvalOptions::new().fd_catalog(catalog),
            )
            .expect("compiled programs are quasi-guarded")
        });
        let store = qg_session
            .evaluate(&enc.structure)
            .expect("compiled programs are quasi-guarded")
            .store;
        // Reference path: general semi-naive engine on the same program.
        let reference_session = reference_session
            .get_or_insert_with(|| Evaluator::new(compiled.program.clone()).unwrap());
        let reference = reference_session.evaluate(&enc.structure).unwrap().store;

        for v in s.domain().elems() {
            let expected = eval_unary(phi, IndVar(0), &s, v, &mut Budget::unlimited()).unwrap();
            assert_eq!(
                store.holds(compiled.phi, &[v]),
                expected,
                "instance {i}, vertex {v}, quasi-guarded"
            );
            assert_eq!(
                reference.holds(compiled.phi, &[v]),
                expected,
                "instance {i}, vertex {v}, semi-naive"
            );
        }
    }
}

#[test]
fn compiled_has_neighbor_matches_naive_mso() {
    check_query_on_forests(&has_neighbor(), 11);
}

#[test]
fn compiled_isolated_matches_naive_mso() {
    // ¬∃y (e(x,y) ∨ e(y,x)) — same depth, negated: exercises the type
    // partitioning (a type set and its complement feed `phi`).
    check_query_on_forests(&isolated(), 13);
}

#[test]
fn compiled_program_is_quasi_guarded_by_construction() {
    let sig = Arc::new(mdtw_graph::graph_signature());
    let compiled = compile_unary_filtered(
        &has_neighbor(),
        IndVar(0),
        &sig,
        1,
        CompileLimits::default(),
        &undirected,
    )
    .unwrap();
    // Grounding must succeed for any valid τ_td input — the guard
    // analysis itself is input-independent, so one instance suffices.
    let g = Graph::from_edges(3, &[(0, 1)]);
    let s = encode_graph(&g);
    let td = decompose(&s, Heuristic::MinDegree);
    let tuple_td = TupleTd::from_td_with_width(&td, 3, 1).unwrap();
    let enc = encode_tuple_td(&s, &tuple_td);
    let catalog = FdCatalog::for_td_signature(&enc.structure);
    let grounding = mdtw_datalog::ground(&compiled.program, &enc.structure, &catalog).unwrap();
    // |P′| ≤ |P| · |𝒜| (Theorem 4.4's bound).
    assert!(grounding.horn.rules.len() <= compiled.program.rules.len() * enc.structure.size());
}
