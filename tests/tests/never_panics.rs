//! Fuzz harness: the parser, pragma scanner, linter and analyzer must
//! never panic, whatever bytes they are fed — malformed input surfaces
//! as `ParseError` / `PragmaError` / spanned diagnostics, not as a
//! process abort. Every span those paths report is checked for sanity:
//! in-bounds half-open byte ranges on char boundaries, with the 1-based
//! line/column actually matching the byte offset.
//!
//! Two input families: raw byte soup (decoded lossily), and valid
//! programs put through random byte-level mutations (overwrite, insert,
//! delete, truncate) — the latter reach much deeper into the parser
//! before failing.

use mdtw_datalog::lint::{lint_source, scan_pragmas};
use mdtw_datalog::{analyze, parse_program, parse_program_lenient, AnalysisOptions, Span};
use mdtw_structure::{Domain, Signature, Structure};
use proptest::prelude::*;
use std::sync::Arc;

/// The structure fuzz programs are parsed against: a few extensional
/// predicates over a tiny anonymous domain.
fn fuzz_structure() -> Structure {
    let sig = Arc::new(Signature::from_pairs([("e", 2), ("node", 1), ("first", 1)]));
    Structure::new(sig, Domain::anonymous(4))
}

/// Asserts a reported span is sane w.r.t. the source it points into.
fn check_span(source: &str, span: Span, what: &str) {
    if !span.is_known() {
        // DUMMY spans are legal everywhere (program-global findings).
        return;
    }
    let (start, end) = (span.start as usize, span.end as usize);
    assert!(start <= end, "{what}: span start {start} > end {end}");
    assert!(
        end <= source.len(),
        "{what}: span end {end} past source len {}",
        source.len()
    );
    assert!(
        source.is_char_boundary(start) && source.is_char_boundary(end),
        "{what}: span {start}..{end} splits a UTF-8 character"
    );
    let newlines_before = source[..start].matches('\n').count();
    assert_eq!(
        span.line as usize,
        newlines_before + 1,
        "{what}: span claims line {} but {start} bytes in lie {} newlines deep",
        span.line,
        newlines_before
    );
    let line_start = source[..start].rfind('\n').map_or(0, |p| p + 1);
    let col = source[line_start..start].chars().count() + 1;
    assert_eq!(
        span.col as usize, col,
        "{what}: span claims column {} but the line offset says {col}",
        span.col
    );
}

/// Pushes one source text through every parse/lint/analyze entry point
/// reachable from text input, checking spans along the way. Nothing here
/// may panic.
fn exercise(source: &str) {
    let s = fuzz_structure();
    if let Err(e) = parse_program(source, &s) {
        check_span(source, e.span, "parse_program error");
    }
    match parse_program_lenient(source, &s) {
        Err(e) => check_span(source, e.span, "parse_program_lenient error"),
        Ok(program) => {
            for spans in &program.spans {
                check_span(source, spans.rule, "rule span");
                check_span(source, spans.head, "head span");
                for &lit in &spans.literals {
                    check_span(source, lit, "literal span");
                }
            }
            // The semantic tier runs under its built-in default budget,
            // so even an adversarial fuzz program cannot hang analysis.
            let report = analyze(&program, &AnalysisOptions::new().semantic(true));
            let mut last_known_start = 0u32;
            for d in &report.diagnostics {
                check_span(source, d.span, "diagnostic span");
                // Diagnostics are sorted source-first: known spans are
                // monotone in start offset (unknown spans sort last).
                if d.span.is_known() {
                    assert!(
                        d.span.start >= last_known_start,
                        "diagnostics out of source order"
                    );
                    last_known_start = d.span.start;
                }
            }
        }
    }
    if let Err(e) = scan_pragmas(source) {
        check_span(source, e.span, "pragma error");
    }
    // The full lint path (pragmas, synthetic structure, lenient parse,
    // budgeted semantic analysis): must return, never abort.
    match lint_source(source) {
        Ok(outcome) => {
            if let Some(e) = &outcome.parse_error {
                check_span(source, e.span, "lint parse error");
            }
            if let Some(report) = &outcome.report {
                for d in &report.diagnostics {
                    check_span(source, d.span, "lint diagnostic span");
                }
            }
        }
        Err(e) => check_span(source, e.span, "lint pragma error"),
    }
}

/// Valid seed programs the mutation family starts from — each exercises
/// a different surface: recursion, pragmas + outputs, negation, and the
/// optimizer-relevant shapes (condensable bodies, symmetric closure).
const BASES: &[&str] = &[
    "reach(X) :- first(X).\nreach(Y) :- reach(X), e(X, Y).\n",
    "%! edb e/2\n%! output path\npath(X, Y) :- e(X, Y).\npath(X, Z) :- path(X, Y), e(Y, Z).\n",
    "q(X) :- e(X, Y), !marked(Y).\nmarked(X) :- e(X, X).\n",
    "%! edb e/2\n%! edb node/1\n%! output answer\nbig(X) :- node(X), node(X).\n\
     q(X, Y) :- e(X, Y).\nq(X, Y) :- q(Y, X).\nanswer(Y) :- q(Y, Y), big(Y).\n",
];

/// Applies byte-level mutations to a base program. Lossy decoding keeps
/// the result `str`-typed (the public API takes `&str`), while still
/// producing plenty of broken tokens, split identifiers and stray
/// replacement characters.
fn mutate(base: &str, ops: &[(u8, u16, u8)]) -> String {
    let mut bytes = base.as_bytes().to_vec();
    for &(op, pos, byte) in ops {
        if bytes.is_empty() {
            break;
        }
        let pos = pos as usize % bytes.len();
        match op % 4 {
            0 => bytes[pos] = byte,
            1 => bytes.insert(pos, byte),
            2 => {
                bytes.remove(pos);
            }
            _ => bytes.truncate(pos),
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn byte_soup_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..300)) {
        let source = String::from_utf8_lossy(&bytes).into_owned();
        exercise(&source);
    }

    #[test]
    fn mutated_programs_never_panic(
        base in 0usize..4,
        ops in proptest::collection::vec((0u8..4, 0u16..400, 0u8..=255), 1..12),
    ) {
        let source = mutate(BASES[base], &ops);
        exercise(&source);
    }
}

#[test]
fn hand_picked_adversarial_sources_never_panic() {
    // Regression corpus: shapes that historically break recursive-descent
    // parsers and span arithmetic — empty input, bare punctuation, CRLF,
    // multi-byte characters around token boundaries, unterminated rules,
    // pragma edge cases, and deep nesting.
    let corpus = [
        "",
        ".",
        ":-",
        ":- .",
        "p.",
        "p(",
        "p().",
        "p(X :- q(X).",
        "p(X) :- q(X)",
        "é(λ) :- ツ(λ).",
        "p(X) :-\r\n q(X).\r\n",
        "%! edb",
        "%! edb e/",
        "%! edb e/99999999999999999999",
        "%! output\n%! output\n",
        "%!",
        "p(X) :- !!q(X).",
        "p(X) :- q(X), , r(X).",
        &"p(X) :- ".repeat(200),
        &format!("p({}) :- e(X, X).", "X, ".repeat(300) + "X"),
        "\u{0}\u{1}\u{2}p(X).",
    ];
    for source in corpus {
        exercise(source);
    }
}
