//! Regression pins for the copy-on-write relation layer behind
//! [`Structure::extended`] — the stratified evaluator's materialization
//! substrate. Extension must **not** deep-copy untouched base relations:
//! the arena, dedup table and warm indexes stay shared (pointer-identical
//! `Arc`s) until a relation's first genuine write, so extending costs
//! O(#new predicates) instead of O(|𝒜|) per multi-stratum evaluation.

use mdtw_datalog::{parse_program, Evaluator};
use mdtw_structure::{Domain, ElemId, Signature, Structure};
use std::sync::Arc;

fn chain(n: usize) -> Structure {
    let sig = Arc::new(Signature::from_pairs([("e", 2), ("node", 1), ("first", 1)]));
    let dom = Domain::anonymous(n);
    let mut s = Structure::new(sig, dom);
    let e = s.signature().lookup("e").unwrap();
    let node = s.signature().lookup("node").unwrap();
    let first = s.signature().lookup("first").unwrap();
    for i in 0..n {
        s.insert(node, &[ElemId(i as u32)]);
    }
    for i in 0..n - 1 {
        s.insert(e, &[ElemId(i as u32), ElemId(i as u32 + 1)]);
    }
    s.insert(first, &[ElemId(0)]);
    s
}

/// `Structure::extended` shares every base relation by pointer identity;
/// only a write un-shares, and only the written relation.
#[test]
fn extended_does_not_deep_copy_untouched_base_relations() {
    let s = chain(500);
    let e = s.signature().lookup("e").unwrap();
    let node = s.signature().lookup("node").unwrap();
    let first = s.signature().lookup("first").unwrap();
    // Warm an index so sharing provably includes the index cache.
    let idx = s.relation(e).index_on(&[0]);
    assert_eq!(s.relation(e).rows_matching(&idx, &[ElemId(3)]).len(), 1);

    let (mut ext, ids) = s.extended([("reach'", 1), ("unreach'", 1)]);
    for p in [e, node, first] {
        assert!(
            ext.relation(p).shares_storage(s.relation(p)),
            "extension must share base relation {p} copy-on-write"
        );
    }
    // Materializing into the fresh relations (what the stratified
    // pipeline does) leaves every base relation shared.
    for i in 0..500u32 {
        ext.insert(ids[0], &[ElemId(i)]);
    }
    for p in [e, node, first] {
        assert!(
            ext.relation(p).shares_storage(s.relation(p)),
            "writes to fresh relations must not un-share base relation {p}"
        );
    }
    // Probing a shared relation through the extension keeps it shared.
    let idx = ext.relation(e).index_on(&[0]);
    assert_eq!(ext.relation(e).rows_matching(&idx, &[ElemId(7)]).len(), 1);
    assert!(ext.relation(e).shares_storage(s.relation(e)));
    // Only a genuine write to a base relation un-shares — and only it.
    ext.insert(e, &[ElemId(499), ElemId(0)]);
    assert!(!ext.relation(e).shares_storage(s.relation(e)));
    assert!(ext.relation(node).shares_storage(s.relation(node)));
    assert!(!s.holds(e, &[ElemId(499), ElemId(0)]), "original untouched");
}

/// End-to-end: a multi-stratum evaluation (which extends the structure
/// internally per call) leaves the input structure byte-for-byte intact
/// and keeps working across session reuse — the structure is extended
/// copy-on-write on every evaluation, never mutated.
#[test]
fn stratified_sessions_extend_without_touching_the_input() {
    let s = chain(200);
    let p = parse_program(
        "reach(X) :- first(X).\nreach(Y) :- reach(X), e(X, Y).\n\
         unreach(X) :- node(X), !reach(X).\n\
         settled(X) :- node(X), !unreach(X), !first(X).",
        &s,
    )
    .unwrap();
    let e = s.signature().lookup("e").unwrap();
    let atoms_before = s.atom_count();
    let sig_len_before = s.signature().len();

    let mut session = Evaluator::new(p).unwrap();
    let first = session.evaluate(&s).unwrap();
    assert_eq!(first.stats.strata, 3);
    let second = session.evaluate(&s).unwrap();
    assert_eq!(second.stats.plan_cache_hits, 3, "one hit per stratum");
    assert_eq!(first.store.fact_count(), second.store.fact_count());

    // The input structure is untouched: same signature, same atoms, and
    // the materialized strata never leaked into it.
    assert_eq!(s.signature().len(), sig_len_before);
    assert_eq!(s.atom_count(), atoms_before);
    assert_eq!(s.relation(e).len(), 199);
}
