//! Offline stand-in for the crates.io `rand` crate (0.9 API surface).
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of `rand` it actually uses: the [`rngs::SmallRng`] generator
//! (xoshiro256++, the same algorithm real `rand` 0.9 uses on 64-bit
//! targets, seeded through SplitMix64), the [`SeedableRng`] and [`Rng`]
//! traits, and [`seq::IndexedRandom::choose`]. Streams are deterministic
//! per seed, which is all the seeded workloads in this repository rely on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Return the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Return the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value range.
pub trait StandardUniform: Sized {
    /// Sample a value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardUniform for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges a uniform value can be drawn from (`random_range` argument).
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                // Checked before `+ 1` so the full-width range (span
                // u64::MAX + 1) neither overflows in debug nor wraps to
                // a `% 0` in release.
                let span_minus_1 = (hi - lo) as u64;
                if span_minus_1 == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (rng.next_u64() % (span_minus_1 + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span_minus_1 = hi.wrapping_sub(lo) as $u as u64;
                if span_minus_1 == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % (span_minus_1 + 1)) as $t)
            }
        }
    )*};
}

impl_sample_range_signed!(i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly from its full range (`f64` is `[0, 1)`).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range`; panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Sample `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++ seeded
    /// via SplitMix64 (mirrors real `rand`'s 64-bit `SmallRng`).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Uniformly choose elements of an indexable collection.
    pub trait IndexedRandom {
        /// The element type.
        type Output;

        /// A uniformly random element, or `None` if the collection is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::IndexedRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.random_range(1..=5);
            assert!((1..=5).contains(&y));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_width_inclusive_ranges_do_not_panic() {
        let mut rng = SmallRng::seed_from_u64(11);
        let _: u64 = rng.random_range(0..=u64::MAX);
        let _: usize = rng.random_range(0..=usize::MAX);
        let _: i64 = rng.random_range(i64::MIN..=i64::MAX);
        let _: u8 = rng.random_range(0..=u8::MAX);
        let x: i32 = rng.random_range(i32::MIN..=i32::MAX);
        let _ = x;
    }

    #[test]
    fn choose_covers_all() {
        let mut rng = SmallRng::seed_from_u64(9);
        let pool = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &v = pool.choose(&mut rng).unwrap();
            seen[v - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
