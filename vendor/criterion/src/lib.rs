//! Offline stand-in for the crates.io `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of criterion its benches use. Measurement is honest but
//! simple: after a warm-up period, each benchmark runs `sample_size`
//! samples, each sized to fit the measurement time, and the mean, min and
//! max per-iteration wall-clock times are printed. There is no HTML
//! report, outlier analysis, or baseline comparison.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Entry point handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Parse CLI arguments (accepted for API compatibility; the vendored
    /// shim ignores filters and harness flags).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Time spent warming up before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total time budget for the measured samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            result: None,
        };
        f(&mut bencher, input);
        let label = format!("{}/{}", self.name, id.label);
        match bencher.result {
            Some(m) => println!(
                "{label:<48} mean {:>12} (min {}, max {}, {} samples)",
                fmt_ns(m.mean_ns),
                fmt_ns(m.min_ns),
                fmt_ns(m.max_ns),
                m.samples,
            ),
            None => println!("{label:<48} (no measurement: Bencher::iter never called)"),
        }
        self
    }

    /// Run one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.bench_with_input(id, &(), |b, ()| f(b))
    }

    /// Close the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    result: Option<Measurement>,
}

impl Bencher {
    /// Measure `routine`, keeping its return value live via
    /// `std::hint::black_box`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget is spent, counting
        // iterations so we can size measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Size each sample so all samples together fit the budget.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut times_ns = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            times_ns.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        let mean = times_ns.iter().sum::<f64>() / times_ns.len() as f64;
        let min = times_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times_ns.iter().cloned().fold(0.0, f64::max);
        self.result = Some(Measurement {
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
            samples: self.sample_size,
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Define a group function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("fpt", 3).label, "fpt/3");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }
}
