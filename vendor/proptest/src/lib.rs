//! Offline stand-in for the crates.io `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of proptest it actually uses: composable [`Strategy`] values
//! over ranges, tuples and collections, and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros. Each `proptest!` test
//! runs `ProptestConfig::cases` deterministic cases from a fixed seed
//! (varied per case), so CI results are reproducible. Unlike the real
//! crate there is no shrinking: a failing case panics with the ordinary
//! assertion message for the generated input.

#![forbid(unsafe_code)]

pub use strategy::Strategy;

/// Test-runner configuration and the deterministic case RNG.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// The RNG handed to strategies (deterministic per test + case index).
    #[derive(Debug, Clone)]
    pub struct TestRng(pub(crate) SmallRng);

    impl TestRng {
        /// RNG for case number `case` of the test named `test_name`.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            // FNV-1a over the test name so distinct tests get distinct
            // streams even at the same case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(SmallRng::seed_from_u64(
                h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }
    }
}

/// The [`Strategy`] trait and its combinators.
pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type `Self::Value`.
    ///
    /// This is the no-shrinking core of proptest's `Strategy`: `generate`
    /// draws one value from the deterministic test RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Generate a value, then generate from the strategy `f` returns.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }

        /// Keep only values satisfying `pred` (bounded retries).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                source: self,
                whence,
                pred,
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        source: S,
        whence: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.source.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter retry budget exhausted: {}", self.whence);
        }
    }

    /// A strategy producing `value` every time.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// A size specification: anything convertible to an inclusive bound
    /// pair, mirroring proptest's `SizeRange`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.0.random_range(self.lo..=self.hi)
        }
    }

    /// Strategy for `Vec<E::Value>` with length drawn from `size`.
    pub struct VecStrategy<E> {
        element: E,
        size: SizeRange,
    }

    /// `Vec` strategy: each element from `element`, length from `size`.
    pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<E::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<E::Value>` with cardinality drawn from
    /// `size` (best effort: duplicates are retried a bounded number of
    /// times, so very tight domains may yield smaller sets).
    pub struct BTreeSetStrategy<E> {
        element: E,
        size: SizeRange,
    }

    /// `BTreeSet` strategy: each element from `element`, target
    /// cardinality from `size`.
    pub fn btree_set<E>(element: E, size: impl Into<SizeRange>) -> BTreeSetStrategy<E>
    where
        E: Strategy,
        E::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<E> Strategy for BTreeSetStrategy<E>
    where
        E: Strategy,
        E::Value: Ord,
    {
        type Value = BTreeSet<E::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<E::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 20 + 20 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. Mirrors proptest's macro grammar:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_prop(x in 0..10usize, (a, b) in arb_pair()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $(
        $(#[$meta:meta])*
        fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
     )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases as u64 {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(
                        let $parm =
                            $crate::strategy::Strategy::generate(&$strategy, &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// `assert!` under a name the real proptest uses inside `proptest!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a name the real proptest uses inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a name the real proptest uses inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip-on-false is approximated by assertion (no case replacement).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        assert!(
            $cond,
            "prop_assume failed (vendored shim treats it as assert)"
        )
    };
}
